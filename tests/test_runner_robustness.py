"""Robustness tests: executor adverse paths, failure budgets, partial
reduction, checkpoint/resume, cache quarantine, and CLI exit codes.

The executor tests complement test_runner.py's happy paths with the
degradation contract of ROBUSTNESS.md: what happens when shards hang,
crash, or raise — with and without a failure budget — and the guarantee
that a retried shard re-runs with the *same* derived seed.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.cli import (
    EXIT_BAD_RESULT,
    EXIT_CRASH,
    EXIT_FAILURE,
    EXIT_OK,
    EXIT_PARTIAL,
    EXIT_TIMEOUT,
    EXIT_USAGE,
    EXPERIMENTS,
    ExperimentDef,
    ExperimentOutcome,
    aggregate_exit_code,
    main,
)
from repro.core.config import MachineConfig
from repro.runner import (
    MISS,
    ExperimentRunner,
    RecordingProgress,
    ResultCache,
    ShardCrashError,
    ShardExecutor,
    ShardFailure,
    ShardPlan,
    TrialSpec,
    cache_key,
    shard_entry_name,
)


# ---------------------------------------------------------------------------
# module-level shard functions (must be picklable for worker processes)
# ---------------------------------------------------------------------------

def _seed_shard(config, params, shard):
    return shard.seed


def _crash_at_shard(config, params, shard):
    """Crashes hard (no exception, no result) at the listed indices."""
    if shard.index in params["crash"]:
        os._exit(29)
    return shard.seed


def _crash_once_seed_shard(config, params, shard):
    """First attempt dies; the retry reports the shard's derived seed."""
    sentinel = params["sentinel_dir"] + f"/attempted-{shard.index}"
    if shard.index in params["crash"] and not os.path.exists(sentinel):
        with open(sentinel, "w") as handle:
            handle.write("attempted")
        os._exit(31)
    return shard.seed


def _raise_at_shard(config, params, shard):
    if shard.index in params["raise"]:
        raise ValueError(f"shard {shard.index} is corrupt")
    return shard.seed


def _hang_at_shard(config, params, shard):
    if shard.index in params["hang"]:
        import time

        time.sleep(60)
    return shard.seed


def _drift_crash_at_shard(config, params, shard):
    """Real drift-resilience cell, crashing hard at the listed indices."""
    from repro.experiments.drift_resilience import _drift_shard

    if shard.index in params["crash"]:
        os._exit(37)
    return _drift_shard(config, params, shard)


def _drift_fingerprint(result) -> list:
    return [
        (
            c.schedule,
            c.backend,
            c.adaptive,
            c.error_rate,
            c.symbols_decoded,
            c.rekeys,
            tuple(sorted(c.adaptive_totals.items())),
            tuple(c.recoveries),
        )
        for c in result.cells
    ]


@pytest.fixture
def config():
    return MachineConfig().scaled_down()


def _plan(n: int, experiment: str = "robust", **params) -> ShardPlan:
    spec = TrialSpec(experiment, n_trials=n, trials_per_shard=1, params=params)
    return ShardPlan.build(spec, 5)


# ---------------------------------------------------------------------------
# executor adverse paths
# ---------------------------------------------------------------------------

class TestExecutorAdversePaths:
    def test_hanging_shard_retries_then_times_out(self, config):
        from repro.runner import ShardTimeoutError

        plan = _plan(1, hang=[0])
        executor = ShardExecutor(jobs=2, shard_timeout=0.3, max_retries=1)
        with pytest.raises(ShardTimeoutError):
            executor.run(_hang_at_shard, plan, config)
        assert executor.stats.retries == 1  # it was retried before failing

    def test_crash_exhausts_the_retry_budget(self, config):
        plan = _plan(1, crash=[0])
        executor = ShardExecutor(jobs=2, max_retries=2)
        with pytest.raises(ShardCrashError):
            executor.run(_crash_at_shard, plan, config)
        # 1 initial + 2 retries, each observed as a crash.
        assert executor.stats.crashed_shards == [0, 0, 0]
        assert executor.stats.retries == 2

    def test_retried_shard_reuses_same_derived_seed(self, config, tmp_path):
        plan = _plan(3, crash=[1], sentinel_dir=str(tmp_path))
        executor = ShardExecutor(jobs=2, max_retries=1)
        results = executor.run(_crash_once_seed_shard, plan, config)
        assert executor.stats.retries == 1
        # The retry reported the same seeds a clean serial run derives.
        serial = ShardExecutor(jobs=1).run(_seed_shard, plan, config)
        assert results == serial == [s.seed for s in plan.shards]


# ---------------------------------------------------------------------------
# failure budget
# ---------------------------------------------------------------------------

class TestFailureBudget:
    def test_budget_tolerates_a_crashed_shard(self, config):
        plan = _plan(3, crash=[1])
        executor = ShardExecutor(jobs=2, max_retries=0, max_failed_shards=1)
        results = executor.run(_crash_at_shard, plan, config)
        assert results[0] == plan.shards[0].seed
        assert results[2] == plan.shards[2].seed
        failure = results[1]
        assert isinstance(failure, ShardFailure)
        assert failure.kind == "crash"
        assert failure.index == 1
        assert failure.attempts == 1
        assert executor.stats.failed_shards == [failure]

    def test_budget_exceeded_aborts(self, config):
        plan = _plan(3, crash=[0, 2])
        executor = ShardExecutor(jobs=2, max_retries=0, max_failed_shards=1)
        with pytest.raises(ShardCrashError):
            executor.run(_crash_at_shard, plan, config)

    def test_fail_fast_overrides_the_budget(self, config):
        plan = _plan(2, crash=[0])
        executor = ShardExecutor(
            jobs=2, max_retries=0, max_failed_shards=5, fail_fast=True
        )
        with pytest.raises(ShardCrashError):
            executor.run(_crash_at_shard, plan, config)

    def test_serial_exception_tolerated_as_error(self, config):
        executor = ShardExecutor(jobs=1, max_failed_shards=1)
        results = executor.run(
            _raise_at_shard, _plan(2, **{"raise": [0]}), config
        )
        assert isinstance(results[0], ShardFailure)
        assert results[0].kind == "error"
        assert "is corrupt" in results[0].message

    def test_worker_exception_not_retried_but_tolerated(self, config):
        executor = ShardExecutor(jobs=2, max_retries=3, max_failed_shards=1)
        results = executor.run(
            _raise_at_shard, _plan(2, **{"raise": [1]}), config
        )
        assert executor.stats.retries == 0
        assert isinstance(results[1], ShardFailure)
        assert results[1].kind == "error"

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            ShardExecutor(max_failed_shards=-1)
        with pytest.raises(ValueError):
            ExperimentRunner(max_failed_shards=-1)


# ---------------------------------------------------------------------------
# runner: partial reduction + checkpoint/resume
# ---------------------------------------------------------------------------

class TestRunnerDegradation:
    def _spec(self, **params) -> TrialSpec:
        return TrialSpec("robust", n_trials=3, trials_per_shard=1, params=params)

    def test_partial_reduction_annotates_and_skips_store(self, tmp_path, config):
        cache = ResultCache(tmp_path / "cache")
        runner = ExperimentRunner(
            jobs=2,
            max_retries=0,
            max_failed_shards=1,
            cache=cache,
            use_cache=True,
            progress=RecordingProgress(),
        )
        spec = self._spec(crash=[1])
        result = runner.run(spec, config, _crash_at_shard, sorted)
        plan = ShardPlan.build(spec, config.seed)
        assert result == sorted([plan.shards[0].seed, plan.shards[2].seed])
        metrics = runner.history[-1]
        assert metrics.partial
        assert [f["kind"] for f in metrics.failed_shards] == ["crash"]
        assert metrics.shards_done == 2
        # Partial results must never enter the whole-run cache.
        key = cache_key("robust", config, dict(spec.params), config.seed)
        assert cache.load("robust", key) is MISS

    def test_checkpoint_resume_completes_partial_run(self, tmp_path, config):
        cache = ResultCache(tmp_path / "cache")
        spec = self._spec(crash=[1])

        crashed = ExperimentRunner(
            jobs=2,
            max_retries=0,
            max_failed_shards=1,
            cache=cache,
            use_cache=True,
            checkpoint=True,
        )
        crashed.run(spec, config, _crash_at_shard, sorted)
        key = cache_key("robust", config, dict(spec.params), config.seed)
        assert cache.load(shard_entry_name("robust", 0), key) is not MISS
        assert cache.load(shard_entry_name("robust", 1), key) is MISS

        resumed = ExperimentRunner(
            jobs=1, cache=cache, use_cache=True, checkpoint=True
        )
        result = resumed.run(spec, config, _seed_shard, sorted)
        metrics = resumed.history[-1]
        assert metrics.shards_resumed == 2
        assert not metrics.partial
        # Identical to a clean serial run, and the full result is cached.
        clean = ExperimentRunner(jobs=1).run(spec, config, _seed_shard, sorted)
        assert result == clean
        assert cache.load("robust", key) == clean
        # Shard checkpoints are cleaned up once the full run is stored.
        assert cache.load(shard_entry_name("robust", 0), key) is MISS

    def test_checkpoint_without_cache_is_inert(self, config):
        runner = ExperimentRunner(jobs=1, use_cache=False, checkpoint=True)
        runner.run(self._spec(), config, _seed_shard, sorted)
        assert runner.history[-1].shards_resumed == 0

    def test_checkpoint_resume_preserves_adaptive_recovery(self, tmp_path, config):
        """Adaptive recovery decisions survive a crash/resume unchanged.

        A drift-resilience run interrupted mid-grid and resumed from its
        shard checkpoints must produce cells bit-identical to a clean
        uninterrupted run — including every recovery event the adaptive
        supervisor took (ROBUSTNESS.md's determinism contract).
        """
        from repro.experiments import run_drift_resilience
        from repro.experiments.drift_resilience import (
            MODES,
            SCHEDULES,
            DriftResilienceResult,
            _drift_shard,
        )

        backends = ("keyed:epoch=6000",)
        grid = [
            (schedule, backend, adaptive)
            for schedule in SCHEDULES
            for backend in backends
            for adaptive in MODES
        ]
        spec = TrialSpec(
            "drift-resilience",
            n_trials=len(grid),
            trials_per_shard=1,
            params={
                "grid": grid,
                "profile": "drift",
                "n_symbols": 24,
                "rate_pps": 400_000.0,
                "wait_cycles": 30_000,
                "huge_pages": 4,
                "crash": [len(grid) - 1],
            },
        )

        def reduce(shards):
            return DriftResilienceResult(
                cells=[cell for sub in shards for cell in sub]
            )

        cache = ResultCache(tmp_path / "cache")
        crashed = ExperimentRunner(
            jobs=2,
            max_retries=0,
            max_failed_shards=1,
            cache=cache,
            use_cache=True,
            checkpoint=True,
        )
        crashed.run(spec, config, _drift_crash_at_shard, reduce)
        assert crashed.history[-1].partial

        resumed = ExperimentRunner(
            jobs=1, cache=cache, use_cache=True, checkpoint=True
        )
        result = resumed.run(spec, config, _drift_shard, reduce)
        assert resumed.history[-1].shards_resumed == len(grid) - 1
        assert not resumed.history[-1].partial

        clean = run_drift_resilience(
            config,
            backends=backends,
            runner=ExperimentRunner(jobs=1, use_cache=False),
        )
        assert _drift_fingerprint(result) == _drift_fingerprint(clean)


# ---------------------------------------------------------------------------
# cache hardening: checksums + quarantine
# ---------------------------------------------------------------------------

class TestCacheQuarantine:
    def test_corrupt_entry_quarantined_and_recomputable(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "a" * 64
        path = cache.store("exp", key, {"rows": [1, 2]})
        path.write_bytes(b"definitely not a pickle")
        assert cache.load("exp", key) is MISS
        assert cache.stats.quarantined == 1
        assert not path.exists()
        assert (cache.quarantine_root / path.name).exists()
        # A fresh store at the same key works — recompute, don't crash.
        cache.store("exp", key, {"rows": [1, 2]})
        assert cache.load("exp", key) == {"rows": [1, 2]}

    def test_checksum_mismatch_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "b" * 64
        path = cache.store("exp", key, [1, 2, 3])
        payload = pickle.loads(path.read_bytes())
        payload["blob"] = pickle.dumps([9, 9, 9])  # tampered, stale checksum
        path.write_bytes(pickle.dumps(payload))
        assert cache.load("exp", key) is MISS
        assert cache.stats.quarantined == 1
        assert (cache.quarantine_root / path.name).exists()

    def test_missing_entry_is_plain_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load("exp", "c" * 64) is MISS
        assert cache.stats.quarantined == 0
        assert cache.stats.misses == 1

    def test_stale_format_version_is_plain_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "d" * 64
        path = cache.path_for("exp", key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(
            pickle.dumps({"version": 1, "key": key, "result": "old-format"})
        )
        assert cache.load("exp", key) is MISS
        assert cache.stats.quarantined == 0
        assert path.exists()  # stale, not corrupt: left in place

    def test_stats_track_hits_and_stores(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "e" * 64
        cache.store("exp", key, 42)
        assert cache.load("exp", key) == 42
        assert cache.stats.stores == 1
        assert cache.stats.hits == 1


# ---------------------------------------------------------------------------
# CLI: exit codes, faults subcommand, summary causes
# ---------------------------------------------------------------------------

def _outcome(ok: bool, code: int) -> ExperimentOutcome:
    return ExperimentOutcome(name="x", ok=ok, wall_seconds=0.0, exit_code=code)


class TestAggregateExitCode:
    def test_all_ok(self):
        assert aggregate_exit_code([_outcome(True, EXIT_OK)]) == EXIT_OK

    def test_single_failure_keeps_its_code(self):
        outcomes = [_outcome(True, EXIT_OK), _outcome(False, EXIT_TIMEOUT)]
        assert aggregate_exit_code(outcomes) == EXIT_TIMEOUT

    def test_mixed_failures_collapse_to_generic(self):
        outcomes = [_outcome(False, EXIT_TIMEOUT), _outcome(False, EXIT_CRASH)]
        assert aggregate_exit_code(outcomes) == EXIT_FAILURE

    def test_partial_only_surfaces_when_nothing_failed(self):
        outcomes = [_outcome(True, EXIT_PARTIAL), _outcome(True, EXIT_OK)]
        assert aggregate_exit_code(outcomes) == EXIT_PARTIAL
        outcomes.append(_outcome(False, EXIT_CRASH))
        assert aggregate_exit_code(outcomes) == EXIT_CRASH


class _FakeResult:
    def __init__(self, values):
        self.values = values

    def format_rows(self):
        return [f"  fake: {self.values}"]


def _fake_definition(shard_fn, **params) -> ExperimentDef:
    def run(cfg, runner):
        spec = TrialSpec(
            "fake-chaos", n_trials=3, trials_per_shard=1, params=params
        )
        return runner.run(spec, cfg, shard_fn, _FakeResult)

    return ExperimentDef("synthetic chaos target", params=params, run=run, sharded=True)


class TestCliExitCodes:
    def test_faults_list(self, capsys):
        assert main(["faults", "list"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "moderate" in out and "heavy" in out

    def test_faults_without_list_is_usage_error(self, capsys):
        assert main(["faults"]) == EXIT_USAGE

    def test_unknown_experiment_is_usage_error(self, capsys):
        assert main(["definitely-not-an-experiment"]) == EXIT_USAGE

    def test_unknown_fault_profile_rejected(self, capsys):
        assert main(["fig5", "--faults", "nope", "--no-cache"]) == EXIT_USAGE
        assert "unknown fault profile" in capsys.readouterr().err

    def test_malformed_fault_scale_rejected(self, capsys):
        assert main(["fig5", "--faults", "drift@zoom", "--no-cache"]) == EXIT_USAGE
        assert "malformed fault scale" in capsys.readouterr().err

    def test_negative_fault_scale_rejected(self, capsys):
        assert main(["fig5", "--faults", "light@-1", "--no-cache"]) == EXIT_USAGE
        assert "scale" in capsys.readouterr().err

    def test_partial_run_exits_partial(self, monkeypatch, capsys):
        monkeypatch.setitem(
            EXPERIMENTS, "fake-chaos", _fake_definition(_crash_at_shard, crash=[1])
        )
        code = main(
            ["fake-chaos", "--jobs", "2", "--max-failed-shards", "1", "--no-cache"]
        )
        assert code == EXIT_PARTIAL
        out = capsys.readouterr().out
        assert "PARTIAL" in out
        assert "shard 1 crash" in out

    def test_crashing_run_exits_crash(self, monkeypatch, capsys):
        monkeypatch.setitem(
            EXPERIMENTS, "fake-chaos", _fake_definition(_crash_at_shard, crash=[1])
        )
        assert main(["fake-chaos", "--jobs", "2", "--no-cache"]) == EXIT_CRASH

    def test_hanging_run_exits_timeout(self, monkeypatch, capsys):
        monkeypatch.setitem(
            EXPERIMENTS, "fake-chaos", _fake_definition(_hang_at_shard, hang=[0])
        )
        code = main(
            [
                "fake-chaos",
                "--jobs",
                "2",
                "--shard-timeout",
                "0.25",
                "--no-cache",
            ]
        )
        assert code == EXIT_TIMEOUT

    def test_raising_run_exits_bad_result(self, monkeypatch, capsys):
        monkeypatch.setitem(
            EXPERIMENTS,
            "fake-chaos",
            _fake_definition(_raise_at_shard, **{"raise": [0]}),
        )
        assert main(["fake-chaos", "--no-cache"]) == EXIT_BAD_RESULT

    def test_fail_fast_flag_reaches_the_executor(self, monkeypatch, capsys):
        monkeypatch.setitem(
            EXPERIMENTS, "fake-chaos", _fake_definition(_crash_at_shard, crash=[0])
        )
        code = main(
            [
                "fake-chaos",
                "--jobs",
                "2",
                "--max-failed-shards",
                "3",
                "--fail-fast",
                "--no-cache",
            ]
        )
        assert code == EXIT_CRASH
