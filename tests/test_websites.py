"""Tests for frames and the synthetic website trace corpus."""

import random

import pytest

from repro.net.packet import Frame
from repro.net.websites import (
    ACK_FRAME,
    MTU_FRAME,
    LoginTraceFactory,
    WebsiteCorpus,
    WebsiteProfile,
)


class TestFrame:
    def test_block_count_rounds_up(self):
        assert Frame(size=64).n_blocks() == 1
        assert Frame(size=65).n_blocks() == 2
        assert Frame(size=256).n_blocks() == 4
        assert Frame(size=1514).n_blocks() == 24

    def test_broadcast_detection(self):
        assert Frame(size=64, protocol="broadcast").is_broadcast()
        assert Frame(size=64, protocol="unknown").is_broadcast()
        assert not Frame(size=64, protocol="tcp").is_broadcast()

    def test_frame_ids_unique(self):
        assert Frame(size=64).frame_id != Frame(size=64).frame_id

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Frame(size=0)


class TestWebsiteProfile:
    def test_deterministic_canonical_trace(self):
        a = WebsiteProfile("example.com", seed=1)
        b = WebsiteProfile("example.com", seed=1)
        assert a.canonical == b.canonical

    def test_different_sites_differ(self):
        a = WebsiteProfile("a.com", seed=1)
        b = WebsiteProfile("b.com", seed=1)
        assert a.canonical != b.canonical

    def test_sizes_within_ethernet_limits(self):
        profile = WebsiteProfile("example.com")
        for _gap, size in profile.canonical:
            assert ACK_FRAME <= size <= MTU_FRAME

    def test_bimodal_structure(self):
        """Most packets sit at the spectrum ends (Sinha et al. structure)."""
        profile = WebsiteProfile("example.com")
        sizes = [s for _g, s in profile.canonical]
        extremes = sum(1 for s in sizes if s in (ACK_FRAME, MTU_FRAME))
        assert extremes / len(sizes) > 0.5

    def test_sample_jitters_but_preserves_shape(self):
        profile = WebsiteProfile("example.com")
        sample = profile.sample(random.Random(3))
        canonical_sizes = [s for _g, s in profile.canonical]
        sampled_sizes = [s for _g, s in sample]
        assert abs(len(sampled_sizes) - len(canonical_sizes)) <= len(canonical_sizes) // 5
        assert sampled_sizes != [0] * len(sampled_sizes)

    def test_samples_vary_between_loads(self):
        profile = WebsiteProfile("example.com")
        rng = random.Random(3)
        assert profile.sample(rng) != profile.sample(rng)

    def test_block_size_vector_capped(self):
        profile = WebsiteProfile("example.com")
        blocks = profile.canonical_block_sizes(cap=4)
        assert all(1 <= b <= 4 for b in blocks)


class TestWebsiteCorpus:
    def test_default_five_sites(self):
        corpus = WebsiteCorpus()
        assert len(corpus) == 5
        assert "facebook.com" in corpus.names()

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            WebsiteCorpus().get("nonexistent.example")

    def test_profiles_mutually_distinct(self):
        corpus = WebsiteCorpus()
        canonicals = [tuple(p.canonical) for p in corpus]
        assert len(set(canonicals)) == len(canonicals)


class TestLoginTraces:
    def test_success_and_failure_differ(self):
        factory = LoginTraceFactory()
        rng = random.Random(1)
        success = factory.success(rng)
        failure = factory.failure(rng)
        assert len(success) > len(failure)  # dashboard vs error page

    def test_deterministic_under_seed(self):
        a = LoginTraceFactory(seed=5).success(random.Random(1))
        b = LoginTraceFactory(seed=5).success(random.Random(1))
        assert a == b

    def test_profiles_exposed(self):
        factory = LoginTraceFactory()
        assert set(factory.profiles) == {"success", "failure"}
