"""Property-based invariants of the packed :class:`CacheEngine`.

The engine is the storage layer every cache path rides after the refactor;
these tests pin the invariants the façade relies on:

* LRU order (min-stamp) tracks an OrderedDict model exactly;
* ``size``/``io_count``/``cpu_count`` bookkeeping matches the arrays;
* the DDIO way cap holds under arbitrary DMA streams;
* dirty evictions are counted as writebacks exactly once;
* the batched kernels (``lookup_many``/``touch_many``) are equivalent to
  their scalar counterparts, including duplicate-line batches.
"""

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cacheset import LINE_DIRTY, LINE_IO
from repro.cache.engine import CacheEngine
from repro.cache.llc import SlicedLLC
from repro.cache.slicehash import ModuloSliceHash
from repro.core.config import CacheGeometry, DDIOConfig

# (op, line, io) triples: 0=touch, 1=insert, 2=evict_lru, 3=evict_lru_of,
# 4=invalidate, 5=mark_io.
engine_ops = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 30), st.booleans()),
    max_size=250,
)


class ModelSet:
    """OrderedDict reference for one set (LRU first, like legacy CacheSet)."""

    def __init__(self, ways: int) -> None:
        self.ways = ways
        self.lines: OrderedDict[int, int] = OrderedDict()

    def apply(self, op: int, line: int, io: bool):
        if op == 0:
            if line not in self.lines:
                return False
            self.lines.move_to_end(line)
            return True
        if op == 1:
            if line in self.lines:
                return "skip"
            evicted = None
            if len(self.lines) >= self.ways:
                victim, flags = next(iter(self.lines.items()))
                del self.lines[victim]
                evicted = (victim, flags)
            self.lines[line] = LINE_IO if io else 0
            return evicted
        if op == 2:
            if not self.lines:
                return "skip"
            victim, flags = next(iter(self.lines.items()))
            del self.lines[victim]
            return (victim, flags)
        if op == 3:
            for victim, flags in self.lines.items():
                if bool(flags & LINE_IO) == io:
                    del self.lines[victim]
                    return (victim, flags)
            return None
        if op == 4:
            return self.lines.pop(line, None)
        if op == 5:
            if line not in self.lines:
                return "skip"
            self.lines[line] |= LINE_IO | LINE_DIRTY
            self.lines.move_to_end(line)
            return None
        raise AssertionError(op)


class TestEngineLRUModel:
    @given(engine_ops, st.integers(1, 6))
    @settings(max_examples=80, deadline=None)
    def test_lru_order_matches_ordereddict_model(self, ops, ways):
        engine = CacheEngine(n_sets=3, ways=ways)
        flat = 1  # middle set; neighbours must stay untouched
        model = ModelSet(ways)
        for op, line, io in ops:
            expected = model.apply(op, line, io)
            if expected == "skip":
                continue
            if op == 0:
                assert engine.touch(flat, line) == expected
            elif op == 1:
                evicted = engine.insert(flat, line, LINE_IO if io else 0)
                assert evicted == expected
            elif op == 2:
                if expected is None:
                    continue
                assert engine.evict_lru(flat) == expected
            elif op == 3:
                assert engine.evict_lru_of(flat, io=io) == expected
            elif op == 4:
                flags = engine.invalidate(flat, line)
                assert flags == (None if expected is None else expected)
            elif op == 5:
                engine.mark_io(flat, line)
            # The packed view must agree with the model in LRU order.
            assert engine.lines_in_lru_order(flat) == list(model.lines.items())
            assert engine.size(flat) == len(model.lines)
        # Neighbouring sets were never touched.
        for other in (0, 2):
            assert engine.size(other) == 0
            assert engine.lines_in_lru_order(other) == []

    @given(engine_ops, st.integers(1, 6))
    @settings(max_examples=80, deadline=None)
    def test_counters_match_flag_arrays(self, ops, ways):
        engine = CacheEngine(n_sets=2, ways=ways)
        flat = 0
        model = ModelSet(ways)
        for op, line, io in ops:
            if model.apply(op, line, io) == "skip":
                continue
            if op == 0:
                engine.touch(flat, line)
            elif op == 1:
                engine.insert(flat, line, LINE_IO if io else 0)
            elif op == 2:
                if engine.size(flat):
                    engine.evict_lru(flat)
            elif op == 3:
                engine.evict_lru_of(flat, io=io)
            elif op == 4:
                engine.invalidate(flat, line)
            elif op == 5:
                engine.mark_io(flat, line)
            row_tags = engine.tags2[flat]
            row_flags = engine.flags2[flat]
            resident = row_tags != -1
            assert engine.size(flat) == int(resident.sum())
            assert engine.io_count(flat) == int(
                ((row_flags & LINE_IO) != 0)[resident].sum()
            )
            assert engine.cpu_count(flat) == engine.size(flat) - engine.io_count(flat)
            assert 0 <= engine.size(flat) <= ways


SMALL_GEOMETRY = CacheGeometry(n_slices=2, sets_per_slice=16, ways=4)

io_streams = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 300)), max_size=300
)


class TestFacadeInvariants:
    @given(io_streams)
    @settings(max_examples=60, deadline=None)
    def test_ddio_cap_holds_under_any_stream(self, ops):
        """I/O occupancy stays at or under write_allocate_ways.

        CPU and DMA streams use disjoint lines: DMA that *hits* a
        CPU-cached line converts it in place (``mark_io``), which
        deliberately bypasses the allocation cap — in both the legacy
        model and the engine — so the cap invariant only binds fills.
        """
        llc = SlicedLLC(
            geometry=SMALL_GEOMETRY,
            ddio=DDIOConfig(enabled=True, write_allocate_ways=2),
            slice_hash=ModuloSliceHash(2),
        )
        for op, line in ops:
            # Offset DMA lines into their own range, same set coverage.
            paddr = (line + 4096) * 64 if op == 2 else line * 64
            if op == 2:
                llc.io_write(paddr)
            else:
                llc.cpu_access(paddr, write=(op == 1))
            flat = llc.flat_set_of(paddr)
            assert llc.engine.io_count(flat) <= 2

    @given(io_streams)
    @settings(max_examples=60, deadline=None)
    def test_dirty_writeback_accounting(self, ops):
        """Every line that ever leaves the LLC dirty is one writeback."""
        llc = SlicedLLC(geometry=SMALL_GEOMETRY, slice_hash=ModuloSliceHash(2))
        expected_writebacks = 0
        dirty = set()

        for op, line in ops:
            paddr = line * 64
            line_addr = paddr >> llc._offset_bits
            flat = llc.flat_set_of(paddr)
            before = {ln for ln, _f in llc.engine.lines_in_lru_order(flat)}
            if op == 2:
                llc.io_write(paddr)
                dirty.add(line_addr)  # DDIO fills/hits are always dirty
            else:
                llc.cpu_access(paddr, write=(op == 1))
                if op == 1:
                    dirty.add(line_addr)
                elif line_addr not in before:
                    dirty.discard(line_addr)  # clean fill
            after = {ln for ln, _f in llc.engine.lines_in_lru_order(flat)}
            for gone in before - after:
                if gone in dirty:
                    expected_writebacks += 1
                    dirty.discard(gone)
        assert llc.stats.writebacks == expected_writebacks

    @given(st.lists(st.integers(0, 400), min_size=1, max_size=200), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_batched_kernels_match_scalar(self, lines, dirty):
        """lookup_many/touch_many agree with per-line touch on hits."""
        llc = SlicedLLC(geometry=SMALL_GEOMETRY, slice_hash=ModuloSliceHash(2))
        other = SlicedLLC(geometry=SMALL_GEOMETRY, slice_hash=ModuloSliceHash(2))
        paddrs = np.asarray([line * 64 for line in lines], dtype=np.int64)
        for llc_ in (llc, other):
            for p in paddrs:  # warm both identically
                llc_.cpu_access(int(p))
        flats, lps = llc.decompose_many(paddrs)
        hit, ways = llc.engine.lookup_many(flats, lps)
        for i, p in enumerate(paddrs):
            assert bool(hit[i]) == llc.is_resident(int(p))
        # touch_many vs sequential touches: identical final LRU state.
        resident = np.flatnonzero(hit)
        llc.engine.touch_many(flats[resident], ways[resident], set_dirty=dirty)
        for i in resident:
            other.engine.touch(int(flats[i]), int(lps[i]), set_dirty=dirty)
        for flat in np.unique(flats):
            assert llc.engine.lines_in_lru_order(int(flat)) == (
                other.engine.lines_in_lru_order(int(flat))
            )
