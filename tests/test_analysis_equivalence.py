"""Differential harness: the columnar pipeline vs the frozen scalar reference.

Every vectorised consumer of the columnar :class:`SampleTrace` is pinned
bit-for-bit against the verbatim pre-refactor implementations frozen in
:mod:`repro.analysis.legacy` and :mod:`repro.attack.legacy_analysis`:

* sequencer — successor-graph build (including dict *insertion order*,
  which decides tie-breaking) and the greedy walk, over thousands of
  randomized synthetic sample rows plus live end-to-end recoveries
  across cache backends x fault profiles x adaptive on/off;
* discovery — block-set co-occurrence scores and the argmax pick;
* covert — the window-decode state machine over randomized activity,
  driven through the real ``CovertReceiver.listen`` loop;
* levenshtein family — property-based (hypothesis) equality for plain,
  cyclic, rotation, breakdown and mismatch-run variants;
* correlation — classifier decisions exact, scores within 1e-12 (GEMV
  and ddot legitimately differ in the last float bits);
* LFSR — output bits, post-run register state, and symbol rejection
  sampling;
* activity summaries — counts/fractions plus the no-re-pack cache;
* ``SetSweep`` — cycle- and telemetry-identity against per-set
  ``EvictionSet.probe`` loops on mirrored machines;
* the shared percentile-rank rule between ``analysis.stats`` and the
  telemetry ``Histogram``.
"""

from __future__ import annotations

import copy
import importlib
import random
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import legacy as LEGACY
from repro.analysis.correlation import (
    CorrelationClassifier,
    cross_correlation,
    cross_correlation_many,
)
from repro.analysis.lfsr import LFSR, lfsr_bits, lfsr_symbols
from repro.attack.legacy_analysis import (
    legacy_activity_counts,
    legacy_activity_fraction,
    legacy_block_scores,
    legacy_build_graph,
    legacy_decode_activity,
    legacy_make_sequence,
)
from repro.attack.primeprobe import SampleTrace, SetSweep
from repro.attack.sequencer import (
    Sequencer,
    SequencerConfig,
    greedy_sequence,
    transition_graph,
)
from repro.core.config import MachineConfig
from repro.core.machine import Machine
from repro.faults import get_profile

# ``repro.analysis.levenshtein`` the *module* — the package re-exports the
# function of the same name, so plain attribute access would shadow it.
LEV = importlib.import_module("repro.analysis.levenshtein")


def _rand_matrix(rng: random.Random, n_rows: int, n_sets: int, density: float):
    """A synthetic activity matrix shaped like a scan: mostly a ring walk
    with noise, so the graphs have real structure (and real ties)."""
    matrix = np.zeros((n_rows, n_sets), dtype=np.int64)
    pos = rng.randrange(n_sets)
    for i in range(n_rows):
        if rng.random() < 0.7:
            pos = (pos + 1) % n_sets
        matrix[i, pos] = rng.randrange(1, 4)
        while rng.random() < density:
            matrix[i, rng.randrange(n_sets)] = rng.randrange(1, 4)
    return matrix


def _graph_orders(graph):
    """(edge order, per-edge successor order) — the tie-break state."""
    return list(graph), {e: list(s) for e, s in graph.items()}


class TestSequencerEquivalence:
    def test_graph_and_walk_pin_bit_identical(self):
        """>= 10k randomized sample rows through both implementations."""
        rng = random.Random(1234)
        total_rows = 0
        nonempty_graphs = 0
        for trial in range(220):
            n_rows = rng.randrange(20, 90)
            n_sets = rng.randrange(3, 25)
            matrix = _rand_matrix(rng, n_rows, n_sets, density=rng.random() * 0.4)
            total_rows += n_rows
            threshold = rng.choice([1, 2, 3])
            rows = [list(map(int, row)) for row in matrix]
            expected = legacy_build_graph(rows, threshold)
            got = transition_graph(matrix, threshold)
            assert got == expected
            assert _graph_orders(got) == _graph_orders(expected)
            if not got:
                continue
            nonempty_graphs += 1
            cutoff = rng.choice([1, 2, 3])
            before = copy.deepcopy(got)
            walk = greedy_sequence(
                got, Sequencer._get_root(got), 8 * n_sets, cutoff
            )
            # legacy mutates its graph (visited -> 0); give it a copy.
            assert walk == legacy_make_sequence(
                copy.deepcopy(expected), n_sets, cutoff
            )
            assert got == before, "vectorised walk must not mutate the graph"
        assert total_rows >= 10_000
        assert nonempty_graphs >= 200

    def test_empty_and_dark_matrices(self):
        assert transition_graph(np.zeros((0, 5), dtype=np.int64), 1) == {}
        assert transition_graph(np.zeros((50, 5), dtype=np.int64), 1) == {}
        # A single always-active column never leaves prev == curr context.
        mono = np.zeros((40, 4), dtype=np.int64)
        mono[:, 2] = 1
        assert transition_graph(mono, 1) == legacy_build_graph(
            [list(map(int, r)) for r in mono], 1
        )


class TestActivitySummaries:
    def _trace(self, matrix):
        return SampleTrace(
            samples=matrix,
            times=np.arange(matrix.shape[0], dtype=np.int64),
            set_labels=[str(j) for j in range(matrix.shape[1])],
        )

    def test_counts_and_fractions_match_legacy(self):
        rng = random.Random(77)
        for _ in range(40):
            matrix = _rand_matrix(
                rng, rng.randrange(1, 60), rng.randrange(1, 12), 0.3
            )
            trace = self._trace(matrix)
            rows = [list(map(int, r)) for r in matrix]
            assert trace.activity_counts() == legacy_activity_counts(
                rows, matrix.shape[1]
            )
            assert trace.activity_fraction() == legacy_activity_fraction(
                rows, matrix.shape[1]
            )

    def test_empty_trace_summaries(self):
        trace = SampleTrace(samples=[], times=[], set_labels=["a", "b"])
        assert trace.activity_counts() == [0, 0]
        assert trace.activity_fraction() == [0.0, 0.0]

    def test_summaries_cached_no_repack(self):
        """After the first computation the matrix is never touched again."""
        trace = self._trace(_rand_matrix(random.Random(5), 30, 6, 0.3))
        counts = trace.activity_counts()
        fractions = trace.activity_fraction()
        trace.samples = None  # any later re-read would now explode
        assert trace.activity_counts() == counts
        assert trace.activity_fraction() == fractions


class TestResolveScores:
    def test_resolve_block_set_matches_legacy_scoring(self, monkeypatch):
        from repro.attack import discovery as disco

        rng = random.Random(31)
        for _ in range(60):
            n_cands = rng.randrange(1, 9)
            matrix = _rand_matrix(rng, rng.randrange(5, 50), n_cands + 1, 0.5)
            trace = SampleTrace(
                samples=matrix,
                times=np.arange(matrix.shape[0], dtype=np.int64),
                set_labels=[str(j) for j in range(n_cands + 1)],
            )

            class _StubMonitor:
                def __init__(self, process, sets, supervisor=None):
                    pass

                def sample(self, n_samples, wait_cycles):
                    return trace

            monkeypatch.setattr(disco, "ProbeMonitor", _StubMonitor)
            finder = disco.RingDiscovery.__new__(disco.RingDiscovery)
            finder.process = None
            finder.groups = [object()]
            candidates = [object() for _ in range(n_cands)]
            picked = finder.resolve_block_set(object(), candidates, 1, 0)
            rows = [list(map(int, r)) for r in matrix]
            scores = legacy_block_scores(rows, n_cands)
            # The scalar scan kept the first strict maximum.
            best, best_score = 0, scores[0]
            for j, score in enumerate(scores):
                if score > best_score:
                    best, best_score = j, score
            assert picked is candidates[best]


# ---------------------------------------------------------------------------
# covert decode
# ---------------------------------------------------------------------------


class _StubClock:
    def __init__(self):
        self.now = 0


class _StubMachine:
    def __init__(self):
        self.clock = _StubClock()

    def idle(self, cycles):
        self.clock.now += cycles


class _StubProcess:
    def __init__(self):
        self.machine = _StubMachine()


class _StubSet:
    def prime(self):
        pass


class _StubSweep:
    def __init__(self, rows):
        self.rows = rows
        self.i = 0

    def probe(self):
        row = self.rows[self.i]
        self.i += 1
        return row


class TestCovertDecodeEquivalence:
    def _receiver(self, n_streams, window, rows):
        from repro.attack.covert import CovertReceiver, StreamMonitors

        streams = [
            StreamMonitors(_StubSet(), _StubSet(), _StubSet())
            for _ in range(n_streams)
        ]
        receiver = CovertReceiver(_StubProcess(), streams, window=window)
        receiver._sweep = lambda: _StubSweep(rows)  # replay recorded activity
        return receiver

    def test_listen_matches_legacy_state_machine(self):
        rng = random.Random(99)
        wait = 13
        for trial in range(50):
            n_streams = rng.randrange(1, 6)
            window = rng.choice([1, 2, 3, 4])
            alphabet = rng.choice([2, 3])
            n_rows = rng.randrange(5, 80)
            rows = [
                np.array(
                    [rng.randrange(3) if rng.random() < 0.5 else 0
                     for _ in range(3 * n_streams)],
                    dtype=np.int64,
                )
                for _ in range(n_rows)
            ]
            n_symbols = rng.randrange(1, 12)
            receiver = self._receiver(n_streams, window, rows)
            decoded = receiver.listen(
                n_symbols, wait, max_samples=n_rows, alphabet=alphabet
            )
            active = [r > 0 for r in rows]
            expected = legacy_decode_activity(
                clock_rows=[[bool(r[3 * k]) for k in range(n_streams)] for r in active],
                b2_rows=[[bool(r[3 * k + 1]) for k in range(n_streams)] for r in active],
                b3_rows=[[bool(r[3 * k + 2]) for k in range(n_streams)] for r in active],
                times=[wait * (i + 1) for i in range(n_rows)],
                window=window,
                alphabet=alphabet,
                n_symbols=n_symbols,
            )
            assert [(d.time, d.stream, d.symbol) for d in decoded] == expected


# ---------------------------------------------------------------------------
# levenshtein family
# ---------------------------------------------------------------------------

seqs = st.lists(st.integers(0, 8), min_size=0, max_size=40)


class TestLevenshteinEquivalence:
    @given(a=seqs, b=seqs)
    @settings(max_examples=150, deadline=None)
    def test_plain_and_breakdown_match_legacy(self, a, b):
        assert LEV.levenshtein(a, b) == LEGACY.levenshtein(a, b)
        assert LEV.edit_breakdown(a, b) == LEGACY.edit_breakdown(a, b)
        assert LEV.longest_mismatch_run(a, b) == LEGACY.longest_mismatch_run(a, b)

    @given(a=seqs, b=seqs)
    @settings(max_examples=150, deadline=None)
    def test_cyclic_and_rotation_match_legacy(self, a, b):
        assert LEV.cyclic_levenshtein(a, b) == LEGACY.cyclic_levenshtein(a, b)
        assert LEV.best_rotation(a, b) == LEGACY.best_rotation(a, b)

    @given(a=seqs)
    @settings(max_examples=50, deadline=None)
    def test_metric_properties(self, a):
        assert LEV.levenshtein(a, a) == 0
        assert LEV.levenshtein(a, []) == len(a)
        assert LEV.cyclic_levenshtein(a, a) == 0

    def test_long_inputs_cross_the_vector_cutoff(self):
        """Large inputs take the NumPy DP path; still bit-identical."""
        rng = random.Random(17)
        for _ in range(6):
            n = rng.randrange(150, 400)
            truth = [rng.randrange(32) for _ in range(n)]
            shift = rng.randrange(n)
            recovered = truth[shift:] + truth[:shift]
            for i in range(0, n, 11):
                recovered[i] = rng.randrange(32)
            assert LEV.levenshtein(recovered, truth) == LEGACY.levenshtein(
                recovered, truth
            )
            assert LEV.cyclic_levenshtein(recovered, truth) == (
                LEGACY.cyclic_levenshtein(recovered, truth)
            )
            assert LEV.best_rotation(recovered, truth) == LEGACY.best_rotation(
                recovered, truth
            )
            assert LEV.edit_breakdown(truth, recovered) == LEGACY.edit_breakdown(
                truth, recovered
            )
            assert LEV.longest_mismatch_run(recovered, truth) == (
                LEGACY.longest_mismatch_run(recovered, truth)
            )

    def test_non_integer_elements_still_work(self):
        a = list("kitten tales")
        b = list("sitting tails")
        assert LEV.levenshtein(a, b) == LEGACY.levenshtein(a, b)
        mixed = [("t", 1), ("t", 2), None, "x"] * 30
        other = [("t", 2), None, None, "y"] * 30
        assert LEV.levenshtein(mixed, other) == LEGACY.levenshtein(mixed, other)


# ---------------------------------------------------------------------------
# correlation
# ---------------------------------------------------------------------------


class TestCorrelationEquivalence:
    def test_cross_correlation_many_matches_scalar(self):
        rng = random.Random(3)
        for n, max_lag in [(10, 0), (10, 4), (50, 8), (100, 8), (100, 1)]:
            traces = [
                [rng.uniform(0.0, 4.0) for _ in range(n)] for _ in range(6)
            ]
            reps = [[rng.uniform(0.0, 4.0) for _ in range(n)] for _ in range(4)]
            # Degenerate (constant) rows on both sides as well.
            traces.append([1.5] * n)
            reps.append([0.0] * n)
            best = cross_correlation_many(
                np.asarray(traces), np.asarray(reps), max_lag=max_lag
            )
            for i, trace in enumerate(traces):
                for j, rep in enumerate(reps):
                    assert best[i, j] == pytest.approx(
                        cross_correlation(trace, rep, max_lag=max_lag),
                        abs=1e-12,
                    )
                    assert best[i, j] == pytest.approx(
                        LEGACY.cross_correlation(trace, rep, max_lag=max_lag),
                        abs=1e-12,
                    )

    def test_classifier_matches_legacy(self):
        rng = random.Random(8)
        n, sites, trials = 60, 5, 40
        training = {
            f"site{s}": [
                [float(rng.randrange(1, 5)) for _ in range(n)] for _ in range(3)
            ]
            for s in range(sites)
        }
        clf = CorrelationClassifier(trace_length=n, max_lag=8)
        legacy_clf = LEGACY.CorrelationClassifier(trace_length=n, max_lag=8)
        clf.fit(training)
        legacy_clf.fit(training)
        assert clf.labels == list(legacy_clf.representatives)
        traces = [
            [rng.randrange(1, 5) for _ in range(rng.randrange(10, n + 20))]
            for _ in range(trials)
        ]
        for trace in traces:
            scores = clf.scores(trace)
            legacy_scores = legacy_clf.scores(trace)
            assert list(scores) == list(legacy_scores)
            for site in scores:
                assert scores[site] == pytest.approx(
                    legacy_scores[site], abs=1e-12
                )
            assert clf.classify(trace) == legacy_clf.classify(trace)
        assert clf.classify_many(traces) == [
            legacy_clf.classify(t) for t in traces
        ]
        labelled = [(f"site{i % sites}", t) for i, t in enumerate(traces)]
        assert clf.accuracy(labelled) == legacy_clf.accuracy(labelled)


# ---------------------------------------------------------------------------
# LFSR
# ---------------------------------------------------------------------------


class TestLfsrEquivalence:
    @pytest.mark.parametrize("width", [4, 7, 15, 16])
    def test_bits_and_state_identical(self, width):
        for seed in (1, 0x5A5A, (1 << width) - 1):
            for count in (0, 1, 5, width - 1, width, width + 1, 256, 1000):
                new = LFSR(width=width, seed=seed)
                old = LEGACY.LFSR(width=width, seed=seed)
                assert new.bits(count) == old.bits(count)
                assert new.state == old.state
                # Continuation after a batched draw stays aligned too.
                assert new.bits(7) == old.bits(7)
                assert new.state == old.state

    def test_module_level_helpers(self):
        assert lfsr_bits(500) == LEGACY.lfsr_bits(500)
        for alphabet in (2, 3):
            for count in (0, 1, 17, 400):
                assert lfsr_symbols(count, alphabet) == LEGACY.lfsr_symbols(
                    count, alphabet
                )


# ---------------------------------------------------------------------------
# percentile rule
# ---------------------------------------------------------------------------


class TestPercentileRule:
    def test_stats_and_histogram_share_the_rank_rule(self):
        from repro.analysis.stats import percentile, percentile_rank
        from repro.telemetry.metrics import Histogram

        rng = random.Random(21)
        data = [float(rng.randrange(0, 50)) for _ in range(500)]
        # Unit-width buckets: each integer value sits exactly at an edge,
        # so interpolation error is bounded by one bucket width.
        hist = Histogram(buckets=tuple(float(v) for v in range(51)))
        hist.observe_many(data)
        for q in (1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0):
            exact = percentile(data, q)
            estimate = hist.percentile(q)
            assert abs(estimate - exact) <= 1.0, (q, exact, estimate)

    def test_shared_validation(self):
        from repro.analysis.stats import percentile_rank

        with pytest.raises(ValueError):
            percentile_rank(10, -0.1)
        with pytest.raises(ValueError):
            percentile_rank(10, 100.5)
        assert percentile_rank(200, 95.0) == pytest.approx(190.0)

    def test_histogram_rejects_bad_q_even_when_empty(self):
        from repro.telemetry.metrics import Histogram

        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 2.0)).percentile(101.0)


# ---------------------------------------------------------------------------
# SetSweep vs per-set probes (mirrored machines)
# ---------------------------------------------------------------------------


def _mirrored_machine():
    from repro.telemetry.context import Telemetry

    cfg = MachineConfig().scaled_down()
    machine = Machine(cfg, telemetry=Telemetry.create(trace=False, metrics=True))
    machine.install_nic()
    return machine


def _probe_sets(machine, n_sets=6):
    from repro.attack.evictionset import OracleEvictionSetBuilder
    from repro.attack.timing import calibrate_threshold

    spy = machine.new_process("spy")
    builder = OracleEvictionSetBuilder(spy, calibrate_threshold(spy), huge_pages=4)
    return spy, builder.build_page_aligned_groups()[:n_sets]


class TestSetSweepEquivalence:
    def test_sweep_is_cycle_and_telemetry_identical(self):
        from repro.net.traffic import ConstantStream

        batched = _mirrored_machine()
        scalar = _mirrored_machine()
        spy_b, sets_b = _probe_sets(batched)
        spy_s, sets_s = _probe_sets(scalar)
        for machine in (batched, scalar):
            sender = ConstantStream(size=256, rate_pps=20_000, protocol="broadcast")
            sender.attach(machine, machine.nic)
        for es in sets_b:
            es.prime()
        for es in sets_s:
            es.prime()
        sweep = SetSweep(spy_b, sets_b)
        for _ in range(25):
            batched.idle(120_000)
            scalar.idle(120_000)
            row = sweep.probe()
            loop = [es.probe() for es in sets_s]
            assert [int(v) for v in row] == loop
            assert batched.clock.now == scalar.clock.now
        assert (
            batched.telemetry.metrics.snapshot()
            == scalar.telemetry.metrics.snapshot()
        )


# ---------------------------------------------------------------------------
# end-to-end: live recoveries across backends x faults x adaptive
# ---------------------------------------------------------------------------


def _recovery_machine(backend: str, faults: str):
    cfg = replace(
        MachineConfig().scaled_down(), cache_backend=backend, faults=get_profile(faults)
    )
    machine = Machine(cfg)
    machine.install_nic()
    return machine


def _run_recovery(backend: str, faults: str, adaptive: bool):
    from repro.attack.evictionset import OracleEvictionSetBuilder
    from repro.attack.timing import calibrate_threshold
    from repro.net.traffic import ConstantStream

    machine = _recovery_machine(backend, faults)
    spy = machine.new_process("spy")
    builder = OracleEvictionSetBuilder(spy, calibrate_threshold(spy), huge_pages=4)
    groups = builder.build_page_aligned_groups()[:8]
    supervisor = None
    if adaptive:
        from repro.attack.adaptive import AdaptiveSupervisor

        supervisor = AdaptiveSupervisor(spy)
    sender = ConstantStream(size=64, rate_pps=15_000, protocol="broadcast")
    sender.attach(machine, machine.nic)
    config = SequencerConfig(n_samples=700, wait_cycles=150_000)
    sequencer = Sequencer(spy, groups, config, supervisor=supervisor)
    sequence, trace = sequencer.recover()
    sender.stop()
    return sequencer, sequence, trace


@pytest.mark.parametrize(
    "backend,faults,adaptive",
    [
        ("modulo", "off", False),
        ("modulo", "light", False),
        ("modulo", "light", True),
        ("keyed:epoch=0", "off", False),
        ("keyed:epoch=0", "light", False),
        ("skewed:partitions=2", "off", False),
        ("skewed:partitions=2", "light", False),
    ],
)
def test_live_recovery_matches_legacy_recomputation(backend, faults, adaptive):
    """The live columnar pipeline, replayed through the frozen scalar one.

    Whatever trace the machine produced (under the given index backend,
    fault profile and adaptive supervision), rebuilding the graph and the
    greedy sequence from ``trace.samples`` with the legacy loops must give
    the exact objects the live run computed.
    """
    sequencer, sequence, trace = _run_recovery(backend, faults, adaptive)
    rows = [list(map(int, row)) for row in trace.samples]
    cfg = sequencer.config
    expected_graph = legacy_build_graph(rows, cfg.miss_threshold)
    live_graph = sequencer.build_graph(trace)
    assert live_graph == expected_graph
    assert _graph_orders(live_graph) == _graph_orders(expected_graph)
    if expected_graph:
        expected_sequence = legacy_make_sequence(
            copy.deepcopy(expected_graph), len(sequencer.groups), cfg.weight_cutoff
        )
        assert sequence == expected_sequence
    else:
        assert sequence == []
    n_sets = trace.n_sets
    assert trace.activity_counts() == legacy_activity_counts(rows, n_sets)
    assert trace.activity_fraction() == legacy_activity_fraction(rows, n_sets)
