"""CLI behaviour: exit status, failure summary, cache flags, parallel smoke.

``python -m repro all`` must collect per-experiment failures rather than
die on the first one, print a summary table, and exit non-zero if anything
failed; the cache flags (``--force``/``--no-cache``/``--cache-dir``) must
do what they say.  The full ``all --jobs 2`` invocation is exercised too,
as a ``slow``-marked test (it runs every experiment).
"""

from __future__ import annotations

import pytest

from repro import cli
from repro.cli import EXPERIMENTS, ExperimentDef, main


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def _tiny_registry(monkeypatch, **overrides):
    """Shrink the registry to fast experiments (plus any stubs)."""
    registry = {"fig5": EXPERIMENTS["fig5"], **overrides}
    monkeypatch.setattr(cli, "EXPERIMENTS", registry)
    return registry


class TestExitStatus:
    def test_all_ok_exits_zero_with_summary(self, monkeypatch, capsys, cache_dir):
        _tiny_registry(monkeypatch)
        assert main(["all", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "== summary ==" in out
        assert "1/1 experiments ok" in out

    def test_failure_is_collected_and_exits_nonzero(
        self, monkeypatch, capsys, cache_dir
    ):
        def explode(cfg, runner):
            raise RuntimeError("synthetic experiment failure")

        _tiny_registry(
            monkeypatch,
            broken=ExperimentDef("always fails", params={}, run=explode),
        )
        assert main(["all", "--cache-dir", cache_dir]) == 1
        captured = capsys.readouterr()
        # fig5 still ran and the table names both outcomes
        assert "Fig.5" in captured.out
        assert "FAILED" in captured.out
        assert "synthetic experiment failure" in captured.err
        assert "1/2 experiments ok" in captured.out

    def test_single_failing_experiment_exits_one(
        self, monkeypatch, capsys, cache_dir
    ):
        def explode(cfg, runner):
            raise RuntimeError("boom")

        _tiny_registry(
            monkeypatch,
            broken=ExperimentDef("always fails", params={}, run=explode),
        )
        assert main(["broken", "--cache-dir", cache_dir]) == 1

    def test_bad_flags_reject(self, cache_dir):
        with pytest.raises(SystemExit):
            main(["fig5", "--jobs", "0", "--cache-dir", cache_dir])
        with pytest.raises(SystemExit):
            main(["fig5", "--seed", "-3", "--cache-dir", cache_dir])


class TestCacheFlags:
    def test_warm_rerun_hits_cache(self, monkeypatch, capsys, cache_dir):
        _tiny_registry(monkeypatch)
        assert main(["all", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["all", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "[cache] fig5: hit" in out

    def test_force_reexecutes(self, monkeypatch, capsys, cache_dir):
        _tiny_registry(monkeypatch)
        main(["all", "--cache-dir", cache_dir])
        capsys.readouterr()
        assert main(["all", "--force", "--cache-dir", cache_dir]) == 0
        assert "[cache]" not in capsys.readouterr().out

    def test_no_cache_writes_nothing(self, monkeypatch, tmp_path, capsys):
        _tiny_registry(monkeypatch)
        cache = tmp_path / "cache"
        assert main(["fig5", "--no-cache", "--cache-dir", str(cache)]) == 0
        assert not cache.exists()

    def test_seed_feeds_the_machine_config(self, monkeypatch, capsys, cache_dir):
        """Different --seed -> different cache key -> no cross-seed hit."""
        _tiny_registry(monkeypatch)
        main(["fig5", "--seed", "11", "--cache-dir", cache_dir])
        capsys.readouterr()
        main(["fig5", "--seed", "12", "--cache-dir", cache_dir])
        assert "[cache]" not in capsys.readouterr().out
        main(["fig5", "--seed", "11", "--cache-dir", cache_dir])
        assert "[cache] fig5: hit" in capsys.readouterr().out


class TestParallelSmoke:
    def test_sharded_experiment_with_jobs_2(self, capsys, cache_dir):
        """Fast real fan-out: fig6 over 2 worker processes."""
        assert main(["fig6", "--jobs", "2", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "jobs=2" in out
        assert "Fig.6" in out

    @pytest.mark.slow
    def test_repro_all_jobs_2(self, capsys, cache_dir):
        """The ISSUE's smoke invocation: every experiment, 2 workers."""
        assert main(["all", "--jobs", "2", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "experiments ok" in out
        assert "FAILED" not in out


class TestAdaptiveAndFaultFlags:
    def _probe_registry(self, monkeypatch, seen):
        class _Rows:
            def format_rows(self):
                return ["  probe ran"]

        def probe(cfg, runner):
            seen["adaptive"] = cfg.adaptive
            seen["schedule"] = cfg.faults.schedule if cfg.faults else None
            seen["scale"] = (
                cfg.faults.probe_jitter_cycles if cfg.faults else None
            )
            return _Rows()

        _tiny_registry(
            monkeypatch,
            probe=ExperimentDef("records config", params={}, run=probe),
        )

    def test_adaptive_flag_reaches_the_config(self, monkeypatch, capsys):
        seen = {}
        self._probe_registry(monkeypatch, seen)
        assert main(["probe", "--no-cache"]) == 0
        assert seen["adaptive"] is False
        assert main(["probe", "--adaptive", "--no-cache"]) == 0
        assert seen["adaptive"] is True

    def test_fault_spec_scale_reaches_the_config(self, monkeypatch, capsys):
        seen = {}
        self._probe_registry(monkeypatch, seen)
        assert main(["probe", "--faults", "drift@0.5", "--no-cache"]) == 0
        assert seen["schedule"] == "drift"
        base = 60  # the drift profile's probe_jitter_cycles
        assert seen["scale"] == base // 2

    def test_faults_list_names_schedules(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("drift", "step", "burst"):
            assert name in out
        assert "PROFILE@SCALE" in out
