"""repro.cache.backends: the pluggable index-mapping seam.

Pins the contracts the LLC integration relies on:

* the keyed permutation primitive is a true permutation over the set
  space for any keys / tag (hypothesis);
* scalar ``flat_of`` and vectorised ``flats_of_many`` agree bit-for-bit
  for every backend (the memoized and batched paths interchange);
* the modulo backend reproduces the pre-backend inline formula exactly;
* epoch re-keying accounts every resident line (remapped + dropped ==
  resident before), bumps the epoch, and reseeds the memo;
* batched ``access_many`` / ``io_write_many`` stay equivalent to scalar
  loops under keyed and skewed backends (including batches a re-key
  lands inside);
* under a skewed backend a line only ever occupies its partition's ways;
* spec parsing and the CLI surface (``backends list`` / ``--backend``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.backends import (
    KeyedMapping,
    ModuloMapping,
    SkewedMapping,
    backend_infos,
    backend_names,
    make_mapping,
    parse_backend_spec,
)
from repro.cache.backends.base import keyed_permute_many
from repro.cache.llc import SlicedLLC
from repro.cache.slicehash import IntelComplexHash
from repro.core.config import CacheGeometry
from repro.cli import main

GEOMETRY = CacheGeometry(n_slices=2, sets_per_slice=32, ways=6)

ALL_SPECS = ["modulo", "keyed:epoch=0", "keyed:epoch=64", "skewed", "skewed:partitions=3"]

u64 = st.integers(0, (1 << 64) - 1)


def _mapping(spec: str, seed: int = 7):
    return make_mapping(spec, GEOMETRY, IntelComplexHash(GEOMETRY.n_slices), seed=seed)


def _llc(spec: str, seed: int = 7) -> SlicedLLC:
    return SlicedLLC(geometry=GEOMETRY, backend=spec, seed=seed)


def _paddrs(rng: np.random.Generator, n: int) -> np.ndarray:
    # Line-aligned addresses over a few MB, duplicates allowed.
    return (rng.integers(0, 1 << 16, size=n) << GEOMETRY.offset_bits).astype(
        np.int64
    )


class TestPermutationPrimitive:
    @given(
        keys=st.lists(st.tuples(u64, u64), min_size=1, max_size=4),
        set_bits=st.integers(2, 10),
        tag=u64,
    )
    @settings(max_examples=60)
    def test_keyed_permute_is_a_permutation(self, keys, set_bits, tag):
        base = np.arange(1 << set_bits, dtype=np.uint64)
        tags = np.full(len(base), tag, dtype=np.uint64)
        out = keyed_permute_many(base, tags, tuple(keys), set_bits)
        assert sorted(out.tolist()) == list(range(1 << set_bits))

    @given(tag_a=u64, tag_b=u64)
    @settings(max_examples=30)
    def test_distinct_tags_usually_permute_differently(self, tag_a, tag_b):
        # Not a strict requirement per-pair, but the tweak must feed
        # through: identical tags must give identical permutations.
        mapping = _mapping("keyed:epoch=0")
        base = np.arange(GEOMETRY.total_sets, dtype=np.uint64)
        same_a = keyed_permute_many(
            base,
            np.full(len(base), tag_a, dtype=np.uint64),
            mapping._round_keys,
            mapping.flat_bits,
        )
        again_a = keyed_permute_many(
            base,
            np.full(len(base), tag_a, dtype=np.uint64),
            mapping._round_keys,
            mapping.flat_bits,
        )
        assert (same_a == again_a).all()


class TestMappingContracts:
    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_scalar_matches_vector(self, spec):
        mapping = _mapping(spec)
        rng = np.random.default_rng(11)
        paddrs = _paddrs(rng, 200)
        lines = paddrs >> GEOMETRY.offset_bits
        vec = mapping.flats_of_many(paddrs, lines)
        for i in range(len(paddrs)):
            assert mapping.flat_of(int(paddrs[i]), int(lines[i])) == int(vec[i])

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_flats_in_range_and_line_stable(self, spec):
        mapping = _mapping(spec)
        rng = np.random.default_rng(13)
        paddrs = _paddrs(rng, 500)
        lines = paddrs >> GEOMETRY.offset_bits
        flats = mapping.flats_of_many(paddrs, lines)
        assert flats.dtype == np.int64
        assert (flats >= 0).all() and (flats < GEOMETRY.total_sets).all()
        # Same line -> same flat (the memo identity every path assumes).
        by_line = {}
        for line, flat in zip(lines.tolist(), flats.tolist()):
            assert by_line.setdefault(line, flat) == flat

    def test_modulo_matches_legacy_inline_formula(self):
        slice_hash = IntelComplexHash(GEOMETRY.n_slices)
        mapping = ModuloMapping(GEOMETRY, slice_hash)
        rng = np.random.default_rng(17)
        for paddr in _paddrs(rng, 300).tolist():
            line = paddr >> GEOMETRY.offset_bits
            legacy = (
                slice_hash.slice_of(paddr) * GEOMETRY.sets_per_slice
                + (line & (GEOMETRY.sets_per_slice - 1))
            )
            assert mapping.flat_of(paddr, line) == legacy

    def test_keyed_scatters_page_stride_candidates(self):
        # The property that defeats eviction-set construction: addresses
        # sharing set-index bits (page-stride candidates) must not share
        # a flat set under the keyed mapping the way they do under modulo.
        modulo = _llc("modulo")
        keyed = _llc("keyed:epoch=0")
        stride = GEOMETRY.sets_per_slice << GEOMETRY.offset_bits
        paddrs = np.arange(64, dtype=np.int64) * stride
        m_flats = {modulo.flat_set_of(int(p)) for p in paddrs}
        k_flats = {keyed.flat_set_of(int(p)) for p in paddrs}
        assert len(m_flats) <= GEOMETRY.n_slices  # all share one set index
        assert len(k_flats) > len(m_flats)  # scattered over many sets

    def test_seed_changes_keyed_mapping(self):
        a = _mapping("keyed:epoch=0", seed=1)
        b = _mapping("keyed:epoch=0", seed=2)
        rng = np.random.default_rng(19)
        paddrs = _paddrs(rng, 128)
        lines = paddrs >> GEOMETRY.offset_bits
        assert (a.flats_of_many(paddrs, lines) != b.flats_of_many(paddrs, lines)).any()


class TestEpochRekeying:
    def test_rekey_accounts_every_resident_line(self):
        llc = _llc("keyed:epoch=64")
        rng = np.random.default_rng(23)
        for paddr in _paddrs(rng, 60).tolist():
            llc.cpu_access(paddr, write=bool(paddr & 64))
        resident = int((llc.engine.tags != -1).sum())
        assert resident > 0
        epoch_before = llc.mapping_epoch
        llc._rekey(now=0)
        snap = llc.mapping.stats.snapshot()
        assert snap["epochs"] == 1
        assert snap["lines_remapped"] + snap["lines_dropped"] == resident
        assert llc.mapping_epoch == epoch_before + 1
        assert int((llc.engine.tags != -1).sum()) == snap["lines_remapped"]
        # The memo was reseeded under the new keys: every resident line's
        # memoized flat matches where the engine actually holds it.
        for idx in np.flatnonzero(llc.engine.tags != -1).tolist():
            line = int(llc.engine.tags[idx])
            flat = idx // llc.engine.ways
            assert llc._flat_memo[line] == flat
            assert llc.mapping.flat_of(line << GEOMETRY.offset_bits, line) == flat

    def test_rekey_fires_on_schedule(self):
        period = 32
        llc = _llc(f"keyed:epoch={period}")
        paddr = 0
        for i in range(period):
            llc.cpu_access(paddr + (i << GEOMETRY.offset_bits))
        assert llc.mapping_epoch == 0
        assert llc.accesses_until_rekey() == 0
        llc.cpu_access(paddr)  # access period+1 triggers the re-key first
        assert llc.mapping_epoch == 1

    def test_epoch_zero_is_static(self):
        llc = _llc("keyed:epoch=0")
        for i in range(200):
            llc.cpu_access(i << GEOMETRY.offset_bits)
        assert llc.mapping_epoch == 0
        assert llc.mapping.stats.epochs == 0


def _random_ops(seed: int, n: int):
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(n):
        kind = int(rng.integers(0, 3))
        paddr = int(rng.integers(0, 600)) << GEOMETRY.offset_bits
        ops.append((kind, paddr))
    return ops


def _apply_scalar(llc: SlicedLLC, ops):
    for kind, paddr in ops:
        if kind == 2:
            llc.io_write(paddr)
        else:
            llc.cpu_access(paddr, write=kind == 1)


def _apply_batched(llc: SlicedLLC, ops, chunk: int = 37):
    # Same op stream, but contiguous same-kind runs go through the
    # batched entry points in fixed-size chunks.
    i = 0
    while i < len(ops):
        kind = ops[i][0]
        j = i
        while j < len(ops) and ops[j][0] == kind and j - i < chunk:
            j += 1
        paddrs = np.asarray([p for _k, p in ops[i:j]], dtype=np.int64)
        if kind == 2:
            llc.io_write_many(paddrs)
        else:
            llc.access_many(paddrs, write=kind == 1)
        i = j


def _state(llc: SlicedLLC):
    return [
        llc.engine.lines_in_lru_order(flat) for flat in range(GEOMETRY.total_sets)
    ]


class TestBatchedScalarEquivalence:
    @pytest.mark.parametrize(
        "spec", ["keyed:epoch=0", "keyed:epoch=100", "skewed", "skewed:partitions=3"]
    )
    def test_batched_equals_scalar(self, spec):
        ops = _random_ops(29, 900)
        a, b = _llc(spec), _llc(spec)
        _apply_scalar(a, ops)
        _apply_batched(b, ops)
        assert _state(a) == _state(b)
        assert a.stats.snapshot() == b.stats.snapshot()
        assert a.mapping_epoch == b.mapping_epoch
        assert a.mapping.stats.snapshot() == b.mapping.stats.snapshot()

    def test_rekey_lands_mid_batch_identically(self):
        # A batch longer than the remaining epoch budget must replay
        # scalar so the re-key fires at the exact access it would in a
        # loop — pin it by crossing the boundary inside one batch.
        spec = "keyed:epoch=50"
        ops = [(0, (i % 120) << GEOMETRY.offset_bits) for i in range(400)]
        a, b = _llc(spec), _llc(spec)
        _apply_scalar(a, ops)
        _apply_batched(b, ops, chunk=400)
        assert a.mapping_epoch == b.mapping_epoch > 0
        assert _state(a) == _state(b)


class TestSkewedPartitions:
    def test_lines_stay_in_their_partition_ways(self):
        llc = _llc("skewed:partitions=3")
        part_ways = GEOMETRY.ways // 3
        _apply_scalar(llc, _random_ops(31, 1500))
        occupied = np.flatnonzero(llc.engine.tags != -1)
        assert len(occupied)
        for idx in occupied.tolist():
            line = int(llc.engine.tags[idx])
            way = idx % GEOMETRY.ways
            p = llc.mapping.partition_of(line)
            assert p * part_ways <= way < (p + 1) * part_ways

    def test_partition_of_matches_vectorised_selector(self):
        mapping = _mapping("skewed:partitions=3")
        lines = np.arange(512, dtype=np.int64)
        parts = mapping._partitions_of_many(lines)
        for line, p in zip(lines.tolist(), parts.tolist()):
            assert mapping.partition_of(line) == p

    def test_partitions_must_divide_ways(self):
        with pytest.raises(ValueError):
            _mapping("skewed:partitions=5")


class TestSpecParsing:
    def test_known_names(self):
        assert backend_names() == ["modulo", "keyed", "skewed"]
        assert [info.name for info in backend_infos()] == backend_names()

    def test_spec_roundtrip(self):
        assert parse_backend_spec("keyed:epoch=5000") == ("keyed", {"epoch": 5000})
        assert parse_backend_spec("modulo") == ("modulo", {})

    @pytest.mark.parametrize(
        "spec", ["bogus", "keyed:interval=3", "keyed:epoch=abc", "modulo:x=1"]
    )
    def test_bad_specs_raise_value_error(self, spec):
        with pytest.raises(ValueError):
            parse_backend_spec(spec)

    def test_backend_instances(self):
        assert isinstance(_mapping("modulo"), ModuloMapping)
        assert isinstance(_mapping("keyed"), KeyedMapping)
        assert isinstance(_mapping("skewed"), SkewedMapping)


class TestCliSurface:
    def test_backends_list_exits_zero(self, capsys):
        assert main(["backends", "list"]) == 0
        out = capsys.readouterr().out
        for name in backend_names():
            assert name in out

    def test_backends_without_list_is_usage_error(self, capsys):
        assert main(["backends"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_unknown_backend_flag_is_usage_error(self, capsys):
        assert main(["fig5", "--backend", "bogus"]) == 2
        assert "unknown cache backend" in capsys.readouterr().err

    def test_bad_backend_param_is_usage_error(self, capsys):
        assert main(["fig5", "--backend", "keyed:nope=1"]) == 2
        assert "bad backend parameter" in capsys.readouterr().err

    def test_run_alias_requires_target(self, capsys):
        assert main(["run"]) == 2
        assert "usage" in capsys.readouterr().err
