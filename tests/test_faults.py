"""Unit tests for the deterministic fault-injection layer.

Covers the config/profile surface, seed derivation and domain isolation,
the frame-stream injectors, the machine-level hook sites (NIC overflow,
refill stall, probe jitter, co-runner), graceful degradation in the attack
primitives, and the two determinism guarantees: an inactive profile adds
nothing, and an active profile is bit-identical across job counts.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.config import FaultConfig, MachineConfig
from repro.core.machine import Machine
from repro.faults import (
    FAULT_PROFILES,
    FaultPlan,
    derive_fault_seed,
    faulty_frames,
    get_profile,
)
from repro.net.packet import Frame
from repro.net.traffic import ConstantStream


def _machine(profile: str = "off", seed: int | None = None) -> Machine:
    cfg = MachineConfig().scaled_down()
    if profile != "off":
        cfg = replace(cfg, faults=get_profile(profile))
    if seed is not None:
        cfg = replace(cfg, seed=seed)
    return Machine(cfg)


# ---------------------------------------------------------------------------
# config + profiles
# ---------------------------------------------------------------------------

class TestFaultConfig:
    def test_default_is_inactive(self):
        assert not FaultConfig().active
        assert MachineConfig().faults == FaultConfig()

    def test_any_nonzero_knob_activates(self):
        assert FaultConfig(drop_prob=0.1).active
        assert FaultConfig(corunner_rate_hz=100.0).active
        assert FaultConfig(probe_jitter_cycles=5).active

    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(drop_prob=1.5)
        with pytest.raises(ValueError):
            FaultConfig(nic_overflow_prob=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(refill_stall_cycles=-1)

    def test_scaled_zero_is_inactive(self):
        assert not get_profile("moderate").scaled(0.0).active

    def test_scaled_clamps_probabilities(self):
        heavy = get_profile("heavy").scaled(100.0)
        assert heavy.drop_prob <= 1.0
        assert heavy.nic_overflow_prob <= 1.0

    def test_round_trips_through_machine_config_dict(self):
        cfg = replace(MachineConfig(), faults=get_profile("light"))
        assert MachineConfig.from_dict(cfg.to_dict()) == cfg

    def test_scaled_down_preserves_faults(self):
        cfg = replace(MachineConfig(), faults=get_profile("light"))
        assert cfg.scaled_down().faults == get_profile("light")


class TestProfiles:
    def test_known_profiles(self):
        assert set(FAULT_PROFILES) == {"off", "light", "moderate", "heavy", "drift"}
        assert not get_profile("off").active
        for name in ("light", "moderate", "heavy", "drift"):
            assert get_profile(name).active

    def test_unknown_profile_raises_with_names(self):
        with pytest.raises(ValueError, match="moderate"):
            get_profile("chaos-monkey")

    def test_intensity_is_monotone(self):
        light, moderate, heavy = (
            get_profile(n) for n in ("light", "moderate", "heavy")
        )
        assert light.drop_prob < moderate.drop_prob < heavy.drop_prob
        assert light.corunner_rate_hz < moderate.corunner_rate_hz


# ---------------------------------------------------------------------------
# plan: seeding, domain isolation, counting
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_from_config_returns_none_when_inactive(self):
        assert FaultPlan.from_config(FaultConfig(), 7) is None

    def test_constructor_refuses_inactive_config(self):
        with pytest.raises(ValueError):
            FaultPlan(FaultConfig(), 7)

    def test_seed_derivation_stable_and_domain_separated(self):
        assert derive_fault_seed(42, "net") == derive_fault_seed(42, "net")
        assert derive_fault_seed(42, "net") != derive_fault_seed(42, "nic")
        assert derive_fault_seed(42, "net") != derive_fault_seed(43, "net")

    def test_same_seed_same_decision_stream(self):
        config = get_profile("heavy")
        a = FaultPlan(config, 123)
        b = FaultPlan(config, 123)
        assert [a.should_drop_frame() for _ in range(200)] == [
            b.should_drop_frame() for _ in range(200)
        ]
        assert [a.probe_jitter() for _ in range(50)] == [
            b.probe_jitter() for _ in range(50)
        ]

    def test_domains_are_isolated(self):
        """Draining one domain's RNG must not perturb another's stream."""
        config = get_profile("heavy")
        quiet = FaultPlan(config, 9)
        noisy = FaultPlan(config, 9)
        for _ in range(500):  # burn the net + timing domains on one plan
            noisy.should_drop_frame()
            noisy.probe_jitter()
        assert [quiet.should_overflow() for _ in range(100)] == [
            noisy.should_overflow() for _ in range(100)
        ]

    def test_counters_mirror_into_telemetry(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry.create(metrics=True)
        plan = FaultPlan(FaultConfig(drop_prob=1.0), 5, telemetry=telemetry)
        assert plan.should_drop_frame()
        assert plan.stats.frames_dropped == 1
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["counters"]["faults.net.dropped"] == 1


# ---------------------------------------------------------------------------
# frame-stream injectors
# ---------------------------------------------------------------------------

def _stream(n: int, gap: float = 1e-5):
    return [(gap, Frame(size=256, protocol="tcp", symbol=i)) for i in range(n)]


class TestFrameInjectors:
    def test_certain_drop_drops_everything_but_keeps_schedule(self):
        plan = FaultPlan(FaultConfig(drop_prob=1.0), 1)
        assert list(faulty_frames(plan, iter(_stream(20)))) == []
        assert plan.stats.frames_dropped == 20

    def test_certain_duplication_doubles_with_fresh_frame_ids(self):
        plan = FaultPlan(FaultConfig(dup_prob=1.0), 1)
        out = list(faulty_frames(plan, iter(_stream(5))))
        assert len(out) == 10
        originals, dupes = out[::2], out[1::2]
        for (_, orig), (dup_gap, dup) in zip(originals, dupes):
            assert dup_gap == 0.0
            assert dup.symbol == orig.symbol
            assert dup.frame_id != orig.frame_id

    def test_certain_reorder_swaps_adjacent_frames(self):
        plan = FaultPlan(FaultConfig(reorder_prob=1.0), 1)
        out = [frame.symbol for _, frame in faulty_frames(plan, iter(_stream(4)))]
        assert out == [1, 0, 3, 2]

    def test_dropped_gap_carries_into_next_frame(self):
        plan = FaultPlan(FaultConfig(drop_prob=0.5), 3)
        total_in = sum(gap for gap, _ in _stream(400))
        out = list(faulty_frames(plan, iter(_stream(400))))
        assert 0 < len(out) < 400
        # All gaps conserved except what the final dropped frame carried out.
        total_out = sum(gap for gap, _ in out)
        assert total_out <= total_in
        assert total_out >= total_in - 2e-5

    def test_gap_jitter_preserves_non_negative_gaps(self):
        plan = FaultPlan(FaultConfig(gap_jitter=0.9), 2)
        out = list(faulty_frames(plan, iter(_stream(50))))
        assert len(out) == 50
        assert all(gap >= 0.0 for gap, _ in out)
        assert plan.stats.gaps_jittered == 50


# ---------------------------------------------------------------------------
# machine wiring
# ---------------------------------------------------------------------------

class TestMachineWiring:
    def test_off_profile_builds_no_plan(self):
        assert _machine("off").faults is None

    def test_active_profile_builds_plan(self):
        machine = _machine("light")
        assert machine.faults is not None
        assert machine.faults.config == get_profile("light")

    def test_nic_overflow_and_stall_counted(self):
        machine = _machine("heavy")
        machine.install_nic()
        source = ConstantStream(
            size=256, rate_pps=100_000, count=400, protocol="broadcast"
        )
        source.attach(machine, machine.nic)
        machine.idle(int(machine.clock.frequency_hz * 0.01))
        stats = machine.nic.stats
        assert stats.overflow_dropped > 0
        assert stats.refill_stalled > 0
        assert machine.faults.stats.nic_overflow_drops == stats.overflow_dropped

    def test_corunner_issues_llc_accesses_without_advancing_clock(self):
        machine = _machine("moderate")
        before = machine.clock.now
        machine.idle(int(machine.clock.frequency_hz * 0.001))
        assert machine.faults.stats.corunner_accesses > 0
        assert machine.clock.now >= before

    def test_probe_jitter_inflates_timed_access(self):
        def measure(machine):
            process = machine.new_process("p")
            base = process.mmap(1)
            process.access(base)
            return [process.timed_access(base) for _ in range(40)]

        quiet = _machine("off")
        noisy = _machine("heavy")
        q = measure(quiet)
        n = measure(noisy)
        assert sum(n) >= sum(q)
        assert noisy.faults.stats.probes_jittered > 0

    def test_identical_seeds_identical_fault_streams(self):
        def run(seed: int):
            machine = _machine("moderate", seed=seed)
            machine.install_nic()
            source = ConstantStream(
                size=256, rate_pps=100_000, count=300, protocol="broadcast"
            )
            source.attach(machine, machine.nic)
            machine.idle(int(machine.clock.frequency_hz * 0.005))
            return machine.nic.stats.frames, machine.faults.stats.to_dict()

        assert run(11) == run(11)
        assert run(11) != run(12)


# ---------------------------------------------------------------------------
# graceful degradation in the attack layer
# ---------------------------------------------------------------------------

class TestAttackDegradation:
    def test_eviction_builder_defaults_single_attempt_when_quiet(self):
        from repro.attack.evictionset import EvictionSetBuilder
        from repro.attack.timing import calibrate_threshold

        machine = _machine("off")
        spy = machine.new_process("spy")
        builder = EvictionSetBuilder(spy, calibrate_threshold(spy), huge_pages=2)
        assert builder.reduce_attempts == 1

    def test_eviction_builder_retries_under_faults(self):
        from repro.attack.evictionset import EvictionSetBuilder
        from repro.attack.timing import calibrate_threshold

        machine = _machine("light")
        spy = machine.new_process("spy")
        builder = EvictionSetBuilder(spy, calibrate_threshold(spy), huge_pages=2)
        assert builder.reduce_attempts == 3

    def test_cluster_report_confidence(self):
        from repro.attack.evictionset import ClusterReport

        full = ClusterReport(set_index=0, groups=[1, 2], expected=2)
        half = ClusterReport(set_index=0, groups=[1], expected=2)
        assert full.confidence == 1.0
        assert half.confidence == 0.5

    def test_sequencer_recover_tolerates_dark_trace(self):
        from repro.attack.evictionset import EvictionSetBuilder
        from repro.attack.sequencer import Sequencer, SequencerConfig
        from repro.attack.timing import calibrate_threshold

        machine = _machine("off")
        machine.install_nic()
        spy = machine.new_process("spy")
        builder = EvictionSetBuilder(spy, calibrate_threshold(spy), huge_pages=4)
        groups = builder.cluster_index(0)
        sequencer = Sequencer(
            spy, groups[:3], SequencerConfig(n_samples=20, wait_cycles=0)
        )
        sequence, trace = sequencer.recover()  # no traffic: nothing observed
        assert sequence == []
        assert trace.n_samples

    def test_calibration_rejects_bad_arguments(self):
        from repro.attack.timing import calibrate_threshold

        machine = _machine("off")
        spy = machine.new_process("spy")
        with pytest.raises(ValueError):
            calibrate_threshold(spy, samples=2)
        with pytest.raises(ValueError):
            calibrate_threshold(spy, max_attempts=0)


# ---------------------------------------------------------------------------
# end-to-end determinism guarantees
# ---------------------------------------------------------------------------

class TestJobsIndependence:
    def test_noise_ablation_identical_across_jobs(self, tmp_path):
        from repro.experiments import run_noise_ablation
        from repro.runner import ExperimentRunner

        cfg = MachineConfig().scaled_down()

        def run(jobs: int):
            runner = ExperimentRunner(jobs=jobs, use_cache=False)
            result = run_noise_ablation(
                cfg, levels=(0.0, 1.0), n_symbols=10, runner=runner
            )
            return result.error_rates, result.faults_injected

        assert run(1) == run(2)
