"""Tests for the web-fingerprinting attack pipeline and discovery helpers."""

import random

import pytest

from repro.attack.discovery import RingDiscovery
from repro.attack.evictionset import OracleEvictionSetBuilder
from repro.attack.fingerprint import (
    CaptureConfig,
    TraceCollector,
    WebFingerprintAttack,
    recovered_vs_original,
)
from repro.attack.setup import MonitorFactory
from repro.net.websites import LoginTraceFactory, WebsiteCorpus


@pytest.fixture
def collector(nic_machine, spy, threshold):
    factory = MonitorFactory(nic_machine, spy, threshold, huge_pages=4)
    chaser = factory.full_ring_chaser()
    config = CaptureConfig(trace_length=60)
    return TraceCollector(nic_machine, chaser, config)


class TestTraceCollector:
    def test_capture_returns_block_sizes(self, collector):
        trace = [(150e-6, 256)] * 20
        sizes = collector.capture_load(trace)
        assert len(sizes) == 20
        assert all(1 <= s <= 4 for s in sizes)

    def test_capture_truncates_to_trace_length(self, collector):
        trace = [(150e-6, 256)] * 80
        sizes = collector.capture_load(trace)
        assert len(sizes) == collector.config.trace_length

    def test_collector_stays_synced_across_loads(self, collector):
        first = collector.capture_load([(150e-6, 256)] * 15)
        second = collector.capture_load([(150e-6, 1514)] * 15)
        assert len(first) == 15
        assert len(second) == 15
        assert all(s == 4 for s in second)  # MTU frames: 4+ blocks

    def test_large_packets_read_via_flipped_half(self, collector):
        """MTU frames flip page halves; alt monitors must still see them."""
        sizes = collector.capture_load([(150e-6, 1514)] * 12)
        assert sizes.count(4) >= 10


class TestRecoveredVsOriginal:
    def test_structure_tracks_original(self, collector):
        trace = LoginTraceFactory().success(random.Random(2))
        original, recovered = recovered_vs_original(collector, trace)
        assert len(recovered) >= len(original) * 0.9
        # Large frames recovered exactly; 1-block frames read as 2 due to
        # the driver's block-1 prefetch (the paper's systematic offset).
        agree = sum(
            1
            for o, r in zip(original, recovered)
            if r == o or (o == 1 and r == 2)
        )
        assert agree / min(len(original), len(recovered)) > 0.85


class TestWebFingerprintAttack:
    def test_untrained_refuses_to_classify(self, collector):
        attack = WebFingerprintAttack(collector, WebsiteCorpus())
        with pytest.raises(RuntimeError):
            attack.classify_one("google.com")
        with pytest.raises(RuntimeError):
            attack.evaluate()

    def test_train_and_classify(self, collector):
        corpus = WebsiteCorpus(sites=("facebook.com", "google.com"))
        attack = WebFingerprintAttack(collector, corpus, rng=random.Random(4))
        attack.train(loads_per_site=2)
        accuracy = attack.evaluate(trials_per_site=2)
        assert accuracy >= 0.75  # 2-site world, clean channel

    def test_training_needs_loads(self, collector):
        attack = WebFingerprintAttack(collector, WebsiteCorpus())
        with pytest.raises(ValueError):
            attack.train(loads_per_site=0)


class TestDiscoveryBlockResolution:
    def test_resolve_block_set_picks_correct_slice(
        self, nic_machine, spy, threshold
    ):
        """The §IV-b trial-and-error: among the 8 slice candidates for a
        buffer's block-2 index, co-activation picks the true one."""
        from repro.net.traffic import ConstantStream

        llc = nic_machine.llc
        buffer = nic_machine.ring.buffers[nic_machine.ring.head]
        builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=4)
        block0 = builder.group_for(
            llc.set_index_of(buffer.dma_paddr), llc.slice_of(buffer.dma_paddr)
        )
        block2_paddr = buffer.dma_paddr + 2 * 64
        candidates = list(
            builder.groups_for_index(llc.set_index_of(block2_paddr)).values()
        )
        discovery = RingDiscovery(spy, [block0])
        source = ConstantStream(size=256, rate_pps=1e5, protocol="broadcast")
        source.attach(nic_machine, nic_machine.nic)
        chosen = discovery.resolve_block_set(
            block0, candidates, n_samples=220, wait_cycles=20_000
        )
        source.stop()
        chosen_paddr = spy.addrspace.translate(chosen.addrs[0])
        assert llc.flat_set_of(chosen_paddr) == llc.flat_set_of(block2_paddr)

    def test_resolve_requires_candidates(self, nic_machine, spy, threshold):
        builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=4)
        block0 = builder.group_for(0, 0)
        discovery = RingDiscovery(spy, [block0])
        with pytest.raises(ValueError):
            discovery.resolve_block_set(block0, [], 10, 0)
