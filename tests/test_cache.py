"""Unit tests for cache sets, slice hashes, and the sliced LLC with DDIO."""

import pytest

from repro.cache.cacheset import CacheSet, LINE_DIRTY, LINE_IO
from repro.cache.llc import SlicedLLC
from repro.cache.slicehash import IntelComplexHash, ModuloSliceHash
from repro.core.config import CacheGeometry, DDIOConfig


class TestCacheSet:
    def test_hit_after_insert(self):
        s = CacheSet(4)
        s.insert(100, 0)
        assert s.touch(100)

    def test_miss_when_absent(self):
        assert not CacheSet(4).touch(1)

    def test_lru_eviction_order(self):
        s = CacheSet(2)
        s.insert(1, 0)
        s.insert(2, 0)
        evicted = s.insert(3, 0)
        assert evicted == (1, 0)

    def test_touch_refreshes_lru(self):
        s = CacheSet(2)
        s.insert(1, 0)
        s.insert(2, 0)
        s.touch(1)
        evicted = s.insert(3, 0)
        assert evicted[0] == 2

    def test_io_count_tracks_origin(self):
        s = CacheSet(4)
        s.insert(1, LINE_IO | LINE_DIRTY)
        s.insert(2, 0)
        assert s.io_count == 1
        assert s.cpu_count == 1

    def test_evict_lru_of_filters_origin(self):
        s = CacheSet(4)
        s.insert(1, 0)
        s.insert(2, LINE_IO)
        s.insert(3, 0)
        line, flags = s.evict_lru_of(io=True)
        assert line == 2 and flags & LINE_IO

    def test_evict_lru_of_none_when_absent(self):
        s = CacheSet(2)
        s.insert(1, 0)
        assert s.evict_lru_of(io=True) is None

    def test_mark_io_converts_and_dirties(self):
        s = CacheSet(2)
        s.insert(5, 0)
        s.mark_io(5)
        assert s.io_count == 1
        assert s.flags_of(5) & LINE_DIRTY

    def test_mark_io_missing_raises(self):
        with pytest.raises(LookupError):
            CacheSet(2).mark_io(1)

    def test_invalidate(self):
        s = CacheSet(2)
        s.insert(7, LINE_IO)
        assert s.invalidate(7) is not None
        assert s.io_count == 0
        assert s.invalidate(7) is None

    def test_touch_sets_dirty_on_write(self):
        s = CacheSet(2)
        s.insert(9, 0)
        s.touch(9, set_dirty=True)
        assert s.flags_of(9) & LINE_DIRTY

    def test_evict_empty_raises(self):
        with pytest.raises(LookupError):
            CacheSet(2).evict_lru()


class TestSliceHash:
    def test_intel_hash_in_range(self):
        h = IntelComplexHash(8)
        for addr in range(0, 1 << 22, 4096 + 64):
            assert 0 <= h.slice_of(addr) < 8

    def test_intel_hash_roughly_uniform(self):
        h = IntelComplexHash(8)
        counts = [0] * 8
        for i in range(4096):
            counts[h.slice_of(i * 64)] += 1
        assert min(counts) > 4096 / 8 * 0.6

    def test_intel_hash_is_xor_linear(self):
        """h(a ^ b) == h(a) ^ h(b): the property real attacks exploit."""
        h = IntelComplexHash(8)
        for a, b in [(0x4000, 0x40), (0x123000, 0x7000), (1 << 21, 1 << 13)]:
            assert h.slice_of(a ^ b) == h.slice_of(a) ^ h.slice_of(b)

    def test_mask_count_validation(self):
        with pytest.raises(ValueError):
            IntelComplexHash(16, masks=(1, 2))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            ModuloSliceHash(6)

    def test_modulo_hash(self):
        h = ModuloSliceHash(8)
        assert h.slice_of(0) == 0
        assert h.slice_of(64) == 1


@pytest.fixture
def llc():
    return SlicedLLC(
        geometry=CacheGeometry(n_slices=2, sets_per_slice=64, ways=4),
        ddio=DDIOConfig(enabled=True, write_allocate_ways=2),
    )


def addrs_same_set(llc, count, start=0):
    """Addresses guaranteed to map to one cache set."""
    target = llc.flat_set_of(start)
    out, addr = [], start
    while len(out) < count:
        if llc.flat_set_of(addr) == target:
            out.append(addr)
        addr += 64 * llc.geometry.sets_per_slice
    return out


class TestLLCCpuPath:
    def test_miss_then_hit(self, llc):
        hit, lat = llc.cpu_access(0x1000)
        assert not hit and lat == llc.timing.llc_miss_latency
        hit, lat = llc.cpu_access(0x1000)
        assert hit and lat == llc.timing.llc_hit_latency

    def test_fill_counts_dram_read(self, llc):
        llc.cpu_access(0x2000)
        assert llc.traffic.reads == 1

    def test_dirty_eviction_writes_back(self, llc):
        lines = addrs_same_set(llc, 5)
        llc.cpu_access(lines[0], write=True)
        for a in lines[1:]:
            llc.cpu_access(a)
        assert llc.traffic.writes == 1

    def test_conflict_eviction_is_lru(self, llc):
        lines = addrs_same_set(llc, 5)
        for a in lines[:4]:
            llc.cpu_access(a)
        llc.cpu_access(lines[0])  # refresh
        llc.cpu_access(lines[4])  # evicts lines[1]
        assert llc.is_resident(lines[0])
        assert not llc.is_resident(lines[1])

    def test_flush_invalidates(self, llc):
        llc.cpu_access(0x3000)
        llc.flush(0x3000)
        assert not llc.is_resident(0x3000)
        hit, _ = llc.cpu_access(0x3000)
        assert not hit


class TestLLCDDIOPath:
    def test_io_write_allocates_in_cache(self, llc):
        llc.io_write(0x4000)
        assert llc.is_resident(0x4000)
        assert llc.traffic.writes == 0  # no DRAM trip — the point of DDIO

    def test_io_lines_capped_per_set(self, llc):
        lines = addrs_same_set(llc, 3, start=0x8000)
        for a in lines:
            llc.io_write(a)
        flat = llc.flat_set_of(lines[0])
        _cpu, io = llc.set_occupancy(flat)
        assert io == 2  # write_allocate_ways

    def test_io_fill_evicts_cpu_line(self, llc):
        """The vulnerability: a packet displaces a CPU (spy) line."""
        lines = addrs_same_set(llc, 5, start=0x10000)
        for a in lines[:4]:
            llc.cpu_access(a)
        llc.io_write(lines[4])
        assert llc.stats.io_evicted_cpu == 1
        assert not llc.is_resident(lines[0])

    def test_io_rewrite_is_hit(self, llc):
        llc.io_write(0x5000)
        llc.io_write(0x5000)
        assert llc.stats.io_hits == 1
        assert llc.stats.io_fills == 1

    def test_io_eviction_writes_back_dirty(self, llc):
        lines = addrs_same_set(llc, 3, start=0x20000)
        for a in lines:
            llc.io_write(a)
        # Third write evicted the first I/O line, which was dirty.
        assert llc.traffic.writes == 1

    def test_no_ddio_goes_to_dram(self):
        llc = SlicedLLC(
            geometry=CacheGeometry(n_slices=2, sets_per_slice=64, ways=4),
            ddio=DDIOConfig(enabled=False),
        )
        llc.io_write(0x4000)
        assert not llc.is_resident(0x4000)
        assert llc.traffic.writes == 1

    def test_no_ddio_invalidates_cached_copy(self):
        llc = SlicedLLC(
            geometry=CacheGeometry(n_slices=2, sets_per_slice=64, ways=4),
            ddio=DDIOConfig(enabled=False),
        )
        llc.cpu_access(0x6000)
        llc.io_write(0x6000)
        assert not llc.is_resident(0x6000)

    def test_io_fill_hook_fires(self, llc):
        seen = []
        llc.io_fill_hook = seen.append
        llc.io_write(0x7000)
        assert seen == [llc.flat_set_of(0x7000)]


class TestAddressDecomposition:
    def test_flat_set_combines_slice_and_index(self, llc):
        paddr = 0x12340
        flat = llc.flat_set_of(paddr)
        assert flat == llc.slice_of(paddr) * 64 + llc.set_index_of(paddr)

    def test_page_aligned_addresses_have_low_index_bits_zero(self, llc):
        for page in range(0, 1 << 20, 4096):
            assert llc.set_index_of(page) % 64 == 0

    def test_slice_hash_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SlicedLLC(
                geometry=CacheGeometry(n_slices=4, sets_per_slice=64, ways=4),
                slice_hash=IntelComplexHash(8),
            )
