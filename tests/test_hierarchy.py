"""Tests for the L1 cache and the inclusive two-level hierarchy."""

import pytest

from repro.cache.hierarchy import CacheHierarchy, L1Cache
from repro.cache.llc import SlicedLLC
from repro.core.config import CacheGeometry, TimingParams


@pytest.fixture
def llc():
    return SlicedLLC(geometry=CacheGeometry(n_slices=2, sets_per_slice=64, ways=4))


@pytest.fixture
def hierarchy(llc):
    return CacheHierarchy(llc, l1=L1Cache(size_kb=4, ways=2))


class TestL1Cache:
    def test_geometry_derivation(self):
        l1 = L1Cache(size_kb=32, ways=8, line_size=64)
        assert l1.n_sets == 64

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            L1Cache(size_kb=3, ways=7)

    def test_hit_after_fill(self):
        l1 = L1Cache(size_kb=4, ways=2)
        assert not l1.access(0x1000)
        l1.fill(0x1000, write=False)
        assert l1.access(0x1000)

    def test_eviction_returns_victim(self):
        l1 = L1Cache(size_kb=4, ways=1)
        l1.fill(0x0, write=True)
        span = l1.n_sets * l1.line_size
        evicted = l1.fill(span, write=False)  # same set, 1 way
        assert evicted is not None
        line, flags = evicted
        assert line == 0


class TestHierarchy:
    def test_l1_hit_is_cheapest(self, hierarchy):
        timing = TimingParams()
        hierarchy.access(0x2000)
        hit, latency = hierarchy.access(0x2000)
        assert hit
        assert latency == timing.l1_hit_latency

    def test_l1_miss_llc_hit_latency(self, hierarchy, llc):
        timing = TimingParams()
        # Fill LLC but force the line out of L1 with same-L1-set conflicts.
        hierarchy.access(0x2000)
        span = hierarchy.l1.n_sets * 64
        hierarchy.access(0x2000 + span)
        hierarchy.access(0x2000 + 2 * span)
        hit, latency = hierarchy.access(0x2000)
        assert not hit  # L1 miss
        if llc.is_resident(0x2000):
            assert latency == timing.l1_hit_latency + timing.llc_hit_latency

    def test_inclusion_back_invalidation(self, hierarchy, llc):
        hierarchy.access(0x3000)
        line = 0x3000 >> 6
        assert hierarchy.l1.access(0x3000)
        llc.invalidate_set_lines(llc.flat_set_of(0x3000), io=False)
        # Inclusive: the L1 copy must be gone too.
        assert not hierarchy.l1.access(0x3000)

    def test_io_invalidation_reaches_l1(self, hierarchy, llc):
        """DMA overwrite without DDIO snoops the whole hierarchy."""
        no_ddio = SlicedLLC(
            geometry=CacheGeometry(n_slices=2, sets_per_slice=64, ways=4),
        )
        from repro.core.config import DDIOConfig

        no_ddio.ddio = DDIOConfig(enabled=False)
        h = CacheHierarchy(no_ddio, l1=L1Cache(size_kb=4, ways=2))
        h.access(0x4000)
        no_ddio.io_write(0x4000)
        assert not h.l1.access(0x4000)

    def test_multiple_hierarchies_chain_hooks(self, llc):
        a = CacheHierarchy(llc, l1=L1Cache(size_kb=4, ways=2))
        b = CacheHierarchy(llc, l1=L1Cache(size_kb=4, ways=2))
        a.access(0x5000)
        b.access(0x5000)
        llc.invalidate_set_lines(llc.flat_set_of(0x5000), io=False)
        assert not a.l1.access(0x5000)
        assert not b.l1.access(0x5000)

    def test_dirty_l1_writeback_marks_llc_dirty(self, llc):
        from repro.cache.cacheset import LINE_DIRTY

        h = CacheHierarchy(llc, l1=L1Cache(size_kb=4, ways=1))
        h.access(0x6000, write=True)
        span = h.l1.n_sets * 64
        h.access(0x6000 + span)  # evicts the dirty L1 line
        flags = llc.sets[llc.flat_set_of(0x6000)].flags_of(0x6000 >> 6)
        assert flags is not None and flags & LINE_DIRTY
