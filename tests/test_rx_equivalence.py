"""Differential equivalence: batched rx datapath vs the frozen scalar one.

The refactor replaced the NIC's per-block ``io_write`` loop and the
driver's per-block ``cpu_access`` loops with batched engine calls over
precomputed block templates, and taught the event loop to drain frame
bursts without one heap round-trip per frame.  This harness pins the claim
that none of that is observable: a machine running the frozen scalar path
(:mod:`repro.nic.legacy`, ``allow_bursts=False``) and a machine running
the batched path with bursts enabled replay the same randomized workload —
mixed frame sizes and protocols, spy probe sweeps interleaved — and must
finish with bit-identical cache state, cache/NIC/driver stats, receive
logs, probe latency traces, and clock values.

The configuration matrix crosses {DDIO on/off} x {faults off/heavy} x
{partition off/on}, plus a ring-randomization config; over the full
matrix more than 10k randomized frames are replayed per side.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import DDIOConfig, MachineConfig
from repro.core.machine import Machine
from repro.defense.partitioning import AdaptivePartition, PartitionConfig
from repro.faults.profiles import get_profile
from repro.net.packet import Frame
from repro.net.traffic import PoissonNoise, TrafficSource

SIZES = [60, 64, 120, 128, 192, 256, 300, 512, 700, 1024, 1200, 1400, 1514]


class MixedStream(TrafficSource):
    """Randomized sizes, gaps and protocols from a private seeded RNG."""

    def __init__(self, seed: int, count: int, rate_pps: float) -> None:
        super().__init__()
        self.seed = seed
        self.count = count
        self.rate_pps = rate_pps

    def _frames(self):
        rng = random.Random(self.seed)
        for _ in range(self.count):
            gap = rng.expovariate(self.rate_pps)
            size = rng.choice(SIZES)
            proto = "broadcast" if rng.random() < 0.35 else "tcp"
            yield gap, Frame(size=size, protocol=proto)


def build_machine(
    legacy: bool,
    ddio: bool,
    faults: str,
    partition: bool,
    randomize: bool,
) -> Machine:
    cfg = MachineConfig().scaled_down()
    cfg.ddio = DDIOConfig(
        enabled=ddio, write_allocate_ways=cfg.ddio.write_allocate_ways
    )
    cfg.faults = get_profile(faults)
    m = Machine(cfg)
    m.install_nic(log_receives=True, legacy=legacy)
    m.allow_bursts = not legacy
    if partition:
        AdaptivePartition(PartitionConfig(period=100_000)).install(m)
    if randomize:
        from repro.defense.randomization import PartialRandomizer

        m.driver.randomizer = PartialRandomizer(interval=16, rng=random.Random(5))
    return m


def run_workload(m: Machine, seed: int, n_frames: int) -> list[int]:
    """Attach sources, interleave spy probe sweeps, return the probe trace."""
    src = MixedStream(seed, count=n_frames - n_frames // 4, rate_pps=400_000.0)
    src.attach(m, m.nic)
    noise = PoissonNoise(
        rate_pps=120_000.0, rng=random.Random(seed + 1), count=n_frames // 4
    )
    noise.attach(m, m.nic)
    spy = m.new_process("spy")
    vbase = spy.mmap(8)
    trace: list[int] = []
    for _ in range(12):
        m.idle(80_000)
        for i in range(0, 8 * 4096, 256):
            trace.append(spy.timed_access(vbase + i))
    # Perpetual actors (the partition's adapt tick, the fault co-runner)
    # reschedule themselves forever, so the queue never empties; run to a
    # horizon generously past the last scheduled frame instead of draining.
    m.run_events_until(m.clock.now + m.clock.cycles(0.05))
    return trace


def full_state(m: Machine):
    geom = m.llc.geometry
    lines = [
        m.llc.engine.lines_in_lru_order(flat)
        for flat in range(geom.n_slices * geom.sets_per_slice)
    ]
    return {
        "llc": m.llc.stats.snapshot(),
        "traffic": (m.llc.traffic.reads, m.llc.traffic.writes),
        "nic": m.nic.stats.snapshot(),
        "driver": m.driver.stats.snapshot(),
        "log": [
            (r.time, r.ring_slot, r.page_paddr, r.dma_paddr, r.n_blocks, r.size)
            for r in m.driver.receive_log
        ],
        "ring": m.ring.order_fingerprint(),
        "lines": lines,
        "now": m.clock.now,
    }


# (ddio, faults, partition, randomize, n_frames); >= 10k frames in total.
MATRIX = [
    (True, "off", False, False, 2600),
    (True, "off", True, False, 1200),
    (True, "heavy", False, False, 1200),
    (True, "heavy", True, False, 1000),
    (False, "off", False, False, 1200),
    (False, "off", True, False, 1000),
    (False, "heavy", False, False, 1000),
    (False, "heavy", True, False, 1000),
    (True, "off", False, True, 1200),
]

assert sum(case[-1] for case in MATRIX) >= 10_000


@pytest.mark.parametrize(
    "ddio,faults,partition,randomize,n_frames",
    MATRIX,
    ids=[
        f"ddio={d}-faults={f}-part={p}-rand={r}" for d, f, p, r, _ in MATRIX
    ],
)
def test_rx_datapath_equivalence(ddio, faults, partition, randomize, n_frames):
    seed = (
        1000 * ddio
        + 100 * (faults == "heavy")
        + 10 * partition
        + randomize
    )
    legacy = build_machine(True, ddio, faults, partition, randomize)
    batched = build_machine(False, ddio, faults, partition, randomize)
    trace_a = run_workload(legacy, seed, n_frames)
    trace_b = run_workload(batched, seed, n_frames)
    assert trace_a == trace_b, "probe latency traces diverged"
    a, b = full_state(legacy), full_state(batched)
    for key in a:
        assert a[key] == b[key], f"{key} diverged"
    # The workload actually delivered frames through the datapath.
    assert batched.nic.stats.frames > 0
    assert batched.driver.stats.frames > 0


def test_bursts_actually_used():
    """The burst drain path really engages on the eligible config (so the
    equivalence above covers it, not just the scalar fallback)."""
    m = build_machine(False, True, "off", False, False)
    drained = []
    src = MixedStream(3, count=200, rate_pps=400_000.0)
    orig = src._drain

    def spy_drain(event, limit):
        drained.append(event.time)
        return orig(event, limit)

    src._drain = spy_drain
    src.attach(m, m.nic)
    m.drain_events()
    assert src.sent == 200
    # Far fewer drain invocations than frames: frames were bursted.
    assert 0 < len(drained) < 200 / 2


def test_burst_window_respects_other_events():
    """A foreign event bounds the drain window: it must fire at its exact
    time relative to frame deliveries, as in the scalar path."""
    order_burst: list[tuple[str, int]] = []
    m = build_machine(False, True, "off", False, False)
    src = MixedStream(9, count=50, rate_pps=400_000.0)
    src.attach(m, m.nic)
    mid = m.clock.now + 60_000
    m.events.schedule(mid, lambda: order_burst.append(("tick", m.clock.now)))
    m.drain_events()
    assert order_burst == [("tick", mid)]
    assert any(r.time > mid for r in m.driver.receive_log)
    assert any(r.time < mid for r in m.driver.receive_log)
