"""Unit tests for the physical page allocator."""

import random

import pytest

from repro.mem.physmem import DramTraffic, PhysicalMemory


@pytest.fixture
def mem():
    return PhysicalMemory(
        size_bytes=1 << 24, page_size=4096, numa_nodes=2, rng=random.Random(1)
    )


class TestAllocation:
    def test_frames_are_unique(self, mem):
        frames = mem.alloc_frames(200)
        assert len(set(frames)) == 200

    def test_node_restriction_honoured(self, mem):
        for _ in range(50):
            frame = mem.alloc_frame(node=1)
            assert mem.node_of_frame(frame) == 1

    def test_bad_node_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.alloc_frame(node=9)

    def test_exhaustion_raises_memoryerror(self):
        tiny = PhysicalMemory(size_bytes=8 * 4096, page_size=4096, numa_nodes=1)
        tiny.alloc_frames(8)
        with pytest.raises(MemoryError):
            tiny.alloc_frame()

    def test_free_then_realloc(self, mem):
        frame = mem.alloc_frame()
        before = mem.free_frames
        mem.free_frame(frame)
        assert mem.free_frames == before + 1

    def test_double_free_rejected(self, mem):
        frame = mem.alloc_frame()
        mem.free_frame(frame)
        with pytest.raises(ValueError):
            mem.free_frame(frame)

    def test_free_out_of_range_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.free_frame(mem.n_frames + 1)

    def test_placement_is_randomised(self):
        a = PhysicalMemory(1 << 24, rng=random.Random(1)).alloc_frames(20)
        b = PhysicalMemory(1 << 24, rng=random.Random(2)).alloc_frames(20)
        assert a != b


class TestContiguous:
    def test_run_is_contiguous_and_aligned(self, mem):
        start = mem.alloc_contiguous(16, align_frames=16)
        assert start % 16 == 0

    def test_contiguous_frames_removed_from_pool(self, mem):
        start = mem.alloc_contiguous(8)
        taken = set(range(start, start + 8))
        later = set(mem.alloc_frames(mem.free_frames))
        assert not (taken & later)

    def test_zero_count_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.alloc_contiguous(0)

    def test_impossible_run_raises(self):
        tiny = PhysicalMemory(size_bytes=4 * 4096, page_size=4096, numa_nodes=1)
        with pytest.raises(MemoryError):
            tiny.alloc_contiguous(8)


class TestNuma:
    def test_nodes_partition_the_range(self, mem):
        counts = {0: 0, 1: 0}
        for frame in range(0, mem.n_frames, 97):
            counts[mem.node_of_frame(frame)] += 1
        assert counts[0] > 0 and counts[1] > 0

    def test_node_of_addr(self, mem):
        assert mem.node_of_addr(0) == 0
        assert mem.node_of_addr(mem.size_bytes - 1) == 1


class TestDramTraffic:
    def test_counters(self):
        t = DramTraffic()
        t.reads += 3
        t.writes += 2
        assert t.total == 5
        t.reset()
        assert t.total == 0
