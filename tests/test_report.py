"""`repro report`: rendering, regression gating, CLI dispatch.

Golden-output tests pin the dashboard's structure (sections, delta table,
backend x faults matrix, history) and the regression logic — the same
>20% floor the hot-path bench gate uses, oriented per metric.
"""

from __future__ import annotations

import pytest

from repro import cli
from repro.telemetry.ledger import LedgerRecord, RunLedger
from repro.telemetry.report import (
    ReportResult,
    primary_metric,
    relative_regression,
    render_html,
    render_report,
    report_main,
)


def _record(**overrides) -> LedgerRecord:
    base = dict(
        experiment="table1",
        timestamp=1700000000.0,
        config_hash="deadbeef",
        backend="modulo",
        faults="off",
        seed=3,
        jobs=1,
        shards_done=4,
        shards_total=4,
        trials=16,
        wall_seconds=1.5,
        headline={"seq_error_rate": 0.10, "divergence": 0.05},
    )
    base.update(overrides)
    return LedgerRecord(**base)


class TestRelativeRegression:
    def test_lower_better_increase_is_degradation(self):
        assert relative_regression("seq_error_rate", 0.2, 0.1) == pytest.approx(0.5)

    def test_lower_better_decrease_is_improvement(self):
        assert relative_regression("seq_error_rate", 0.1, 0.2) < 0

    def test_higher_better_drop_is_degradation(self):
        assert relative_regression("accuracy_ddio", 0.5, 1.0) == pytest.approx(0.5)

    def test_info_metric_never_regresses(self):
        assert relative_regression("empty_set_fraction", 9.0, 0.1) == 0.0

    def test_zero_to_nonzero_error_is_total_degradation(self):
        assert relative_regression("seq_error_rate", 0.01, 0.0) == pytest.approx(1.0)

    def test_both_zero_is_no_change(self):
        assert relative_regression("seq_error_rate", 0.0, 0.0) == 0.0


class TestPrimaryMetric:
    def test_prefers_error_metrics(self):
        assert primary_metric({"wall": 1.0, "seq_error_rate": 0.1}) == "seq_error_rate"

    def test_falls_back_to_first_key(self):
        assert primary_metric({"foo": 1.0, "bar": 2.0}) == "foo"

    def test_empty_headline(self):
        assert primary_metric({}) is None


class TestRenderReport:
    def test_single_run_renders_new_rows(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record())
        result = render_report(ledger)
        assert isinstance(result, ReportResult)
        assert result.experiments == ["table1"]
        assert result.regressions == []
        assert "## table1" in result.markdown
        assert "| seq_error_rate | 0.1 | - | - | new |" in result.markdown
        assert "### History" in result.markdown
        assert "backend `modulo`" in result.markdown

    def test_second_run_gets_delta_row_and_ok_status(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record())
        ledger.append(_record(headline={"seq_error_rate": 0.10, "divergence": 0.05}))
        result = render_report(ledger)
        assert "| seq_error_rate | 0.1 | 0.1 | +0 | ok |" in result.markdown
        assert result.regressions == []

    def test_regression_flagged_past_tolerance(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record())
        ledger.append(_record(headline={"seq_error_rate": 0.30, "divergence": 0.05}))
        result = render_report(ledger)
        assert len(result.regressions) == 1
        assert "seq_error_rate" in result.regressions[0]
        assert "REGRESSED" in result.markdown
        assert "## Regressions" in result.markdown

    def test_improvement_not_flagged(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record())
        ledger.append(_record(headline={"seq_error_rate": 0.02, "divergence": 0.05}))
        result = render_report(ledger)
        assert result.regressions == []
        assert "improved" in result.markdown

    def test_backend_fault_matrix_cells(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record())
        ledger.append(_record(backend="keyed", faults="moderate",
                              headline={"seq_error_rate": 0.25}))
        markdown = render_report(ledger).markdown
        assert "### Backend x fault-profile matrix" in markdown
        assert "| keyed" in markdown and "| modulo" in markdown
        assert "moderate" in markdown

    def test_experiment_filter_and_missing_experiment(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record())
        result = render_report(ledger, experiment="fig6")
        assert result.experiments == []
        assert "_no ledger records_" in result.markdown

    def test_history_respects_last(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for i in range(6):
            ledger.append(_record(seed=i))
        markdown = render_report(ledger, last=2).markdown
        history = markdown.split("### History")[1]
        assert history.count("| run |") == 2

    def test_partial_and_cached_flags_shown(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record(partial=True, cache_hit=True))
        markdown = render_report(ledger).markdown
        assert "**partial run**" in markdown
        assert "served from cache" in markdown

    def test_recovery_column_sums_adaptive_context(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record())  # no adaptive context -> '-'
        ledger.append(_record(context={
            "adaptive.recalibrations": 2.0,
            "adaptive.heals": 1.0,
            "adaptive.confidence": 0.8,
            "faults.injected": 40.0,  # not a recovery, must not be summed
        }))
        markdown = render_report(ledger).markdown
        history = markdown.split("### History")[1]
        assert "| recov |" in history
        assert "| 3 (80%) |" in history
        assert "| - |" in history


class TestRenderHtml:
    def test_tables_and_headings_render(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record())
        html = render_html(render_report(ledger).markdown)
        assert html.startswith("<!DOCTYPE html>")
        assert "<h2>table1</h2>" in html
        assert "<table>" in html and "<th>metric</th>" in html
        assert "<td>seq_error_rate</td>" in html

    def test_inline_markup_escaped_and_rendered(self):
        html = render_html("plain `code` and **bold** and <script>")
        assert "<code>code</code>" in html
        assert "<strong>bold</strong>" in html
        assert "&lt;script&gt;" in html


class TestReportMain:
    def test_missing_ledger_exits_nonzero(self, tmp_path, capsys):
        assert report_main(["--cache-dir", str(tmp_path / "empty")]) == 1
        assert "no ledger" in capsys.readouterr().err

    def test_unknown_experiment_exits_nonzero(self, tmp_path, capsys):
        RunLedger(tmp_path).append(_record())
        assert report_main(["fig6", "--cache-dir", str(tmp_path)]) == 1
        assert "no ledger records for 'fig6'" in capsys.readouterr().err

    def test_writes_out_file(self, tmp_path, capsys):
        RunLedger(tmp_path).append(_record())
        out = tmp_path / "report.md"
        assert report_main(
            ["table1", "--cache-dir", str(tmp_path), "--out", str(out)]
        ) == 0
        assert "## table1" in out.read_text()

    def test_html_flag(self, tmp_path):
        RunLedger(tmp_path).append(_record())
        out = tmp_path / "report.html"
        assert report_main(
            ["--cache-dir", str(tmp_path), "--html", "--out", str(out)]
        ) == 0
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_gate_fails_on_regression(self, tmp_path, capsys):
        ledger = RunLedger(tmp_path)
        ledger.append(_record())
        ledger.append(_record(headline={"seq_error_rate": 0.5}))
        assert report_main(["--cache-dir", str(tmp_path), "--gate",
                            "--out", str(tmp_path / "r.md")]) == 1
        assert "[report] REGRESSION" in capsys.readouterr().err
        # without --gate the same regression only warns
        assert report_main(["--cache-dir", str(tmp_path),
                            "--out", str(tmp_path / "r.md")]) == 0

    def test_cli_dispatches_report_subcommand(self, tmp_path, capsys):
        RunLedger(tmp_path).append(_record())
        assert cli.main(["report", "table1", "--cache-dir", str(tmp_path)]) == 0
        assert "## table1" in capsys.readouterr().out
