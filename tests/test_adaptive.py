"""Unit tests for the adaptive attack runtime.

Covers the time-varying fault schedules (shape lookup, scaling semantics,
spec parsing), online recalibration (CalibrationResult retry accounting
incl. the give-up path), the AdaptiveSupervisor's detectors / budgets /
hysteresis, the self-healing paths against a re-keying cache backend, and
the end-to-end guarantees: adaptive recovery decisions are bit-identical
at any job count, and a non-adaptive run constructs no adaptive machinery.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.attack.adaptive import (
    AdaptiveConfig,
    AdaptiveStats,
    AdaptiveSupervisor,
)
from repro.attack.timing import CalibrationResult, calibrate_threshold
from repro.core.config import FaultConfig, MachineConfig
from repro.core.machine import Machine
from repro.faults import (
    FAULT_SCHEDULES,
    FaultSchedule,
    get_profile,
    get_schedule,
    parse_fault_spec,
)


# ---------------------------------------------------------------------------
# schedules
# ---------------------------------------------------------------------------

class TestFaultSchedule:
    def test_registry_names_match(self):
        for name, sched in FAULT_SCHEDULES.items():
            assert sched.name == name

    def test_ramp_interpolates(self):
        sched = FaultSchedule("r", "", points=((1.0, 1.0), (3.0, 3.0)))
        assert sched.scale_at(0.002) == pytest.approx(2.0)

    def test_boundaries_hold(self):
        sched = FaultSchedule("r", "", points=((1.0, 1.0), (3.0, 3.0)))
        assert sched.scale_at(0.0) == 1.0
        assert sched.scale_at(0.010) == 3.0

    def test_step_holds_previous(self):
        sched = FaultSchedule(
            "s", "", points=((0.0, 0.5), (1.0, 2.0)), mode="step"
        )
        assert sched.scale_at(0.0009) == 0.5
        assert sched.scale_at(0.0011) == 2.0

    def test_periodic_wraps(self):
        sched = FAULT_SCHEDULES["burst"]
        period = sched.period_ms / 1e3
        for t in (0.0001, 0.0005, 0.0011):
            assert sched.scale_at(t) == sched.scale_at(t + period)
        assert sched.scale_at(0.0001) == 2.5  # inside the burst
        assert sched.scale_at(0.0005) == 0.0  # after it

    def test_max_scale(self):
        for sched in FAULT_SCHEDULES.values():
            assert sched.max_scale() == 2.5

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule("x", "", points=())
        with pytest.raises(ValueError):
            FaultSchedule("x", "", points=((2.0, 1.0), (1.0, 1.0)))
        with pytest.raises(ValueError):
            FaultSchedule("x", "", points=((0.0, -1.0),))
        with pytest.raises(ValueError):
            FaultSchedule("x", "", points=((0.0, 1.0),), mode="sine")
        with pytest.raises(ValueError):
            FaultSchedule("x", "", points=((0.0, 1.0),), period_ms=-1.0)

    def test_unknown_schedule_lists_names(self):
        with pytest.raises(ValueError, match="drift"):
            get_schedule("chaos")

    def test_drift_profile_stays_separable(self):
        # The recalibrated midpoint threshold only separates hit/miss
        # jitter distributions while the scaled probe-jitter cap stays
        # under the 160-cycle hit/miss latency gap; the built-in drift
        # profile is designed to stay recoverable.
        profile = get_profile("drift")
        sched = get_schedule(profile.schedule)
        assert profile.probe_jitter_cycles * sched.max_scale() < 160


class TestParseFaultSpec:
    def test_plain_profile(self):
        assert parse_fault_spec("moderate") == get_profile("moderate")

    def test_scaled_profile(self):
        spec = parse_fault_spec("light@2")
        assert spec == get_profile("light").scaled(2.0)
        assert spec.drop_prob == pytest.approx(0.02)

    def test_scale_preserves_schedule(self):
        assert parse_fault_spec("drift@1.5").schedule == "drift"

    def test_unknown_profile(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            parse_fault_spec("nope@2")

    def test_malformed_scale(self):
        with pytest.raises(ValueError, match="malformed fault scale"):
            parse_fault_spec("light@fast")

    def test_out_of_range_scale(self):
        with pytest.raises(ValueError, match="finite"):
            parse_fault_spec("light@-1")
        with pytest.raises(ValueError, match="finite"):
            parse_fault_spec("light@inf")


class TestScheduledPlan:
    def _machine(self, schedule: str) -> Machine:
        faults = replace(get_profile("light"), schedule=schedule)
        return Machine(replace(MachineConfig().scaled_down(), faults=faults))

    def test_schedule_requires_clock(self):
        from repro.faults import FaultPlan

        with pytest.raises(ValueError, match="clock"):
            FaultPlan(replace(get_profile("light"), schedule="drift"), root_seed=1)

    def test_unknown_schedule_rejected_at_machine_build(self):
        with pytest.raises(ValueError, match="unknown fault schedule"):
            self._machine("zigzag")

    def test_scale_follows_sim_time(self):
        machine = self._machine("step")
        plan = machine.faults
        assert plan.schedule_scale() == 0.0
        machine.idle(2_000_000)  # well past the 0.7 ms step
        if machine.clock.seconds(machine.clock.now) < 0.0008:
            machine.idle(10_000_000)
        assert plan.schedule_scale() == 2.5

    def test_scheduleless_plan_scale_is_constant(self):
        machine = Machine(
            replace(MachineConfig().scaled_down(), faults=get_profile("light"))
        )
        assert machine.faults.schedule_scale() == 1.0
        machine.idle(5_000_000)
        assert machine.faults.schedule_scale() == 1.0

    def test_schedule_field_in_config_hash(self):
        base = MachineConfig().scaled_down()
        with_sched = replace(
            base, faults=replace(get_profile("light"), schedule="drift")
        )
        without = replace(base, faults=get_profile("light"))
        assert with_sched.config_hash() != without.config_hash()


# ---------------------------------------------------------------------------
# calibration retry accounting
# ---------------------------------------------------------------------------

class _FakeGeometry:
    line_size = 64


class _FakeLLC:
    geometry = _FakeGeometry()


class _FakeClock:
    now = 0


class _FakePhysmem:
    page_size = 4096


class _FakeMachine:
    llc = _FakeLLC()
    physmem = _FakePhysmem()
    clock = _FakeClock()
    telemetry = None


class _ScriptedProcess:
    """Feeds scripted (hit, miss) latency pairs to calibrate_threshold."""

    def __init__(self, passes: list[tuple[int, int]]) -> None:
        #: One (hit_latency, miss_latency) pair per calibration pass; the
        #: final entry repeats if more passes are attempted.
        self.passes = passes
        self.timed_calls = 0
        self.machine = _FakeMachine()

    def mmap(self, pages: int) -> int:
        return 0

    def access(self, vaddr: int) -> None:
        pass

    def flush(self, vaddr: int) -> None:
        pass

    def timed_access(self, vaddr: int) -> int:
        # calibrate_threshold alternates hit, miss measurements; passes
        # are delimited by sample-count doubling (64, then 128, ...).
        call = self.timed_calls
        self.timed_calls += 1
        boundary, index = 0, 0
        for index, _pair in enumerate(self.passes):
            boundary += 2 * 64 * (2**index)
            if call < boundary:
                break
        hit, miss = self.passes[min(index, len(self.passes) - 1)]
        return hit if call % 2 == 0 else miss


class TestCalibrationResult:
    def test_first_pass_success(self):
        result = calibrate_threshold(_ScriptedProcess([(100, 260)]))
        assert isinstance(result, CalibrationResult)
        assert result.attempts == 1
        assert result.samples_used == 64
        assert result.separation == pytest.approx(160.0)
        assert result.threshold == pytest.approx(180.0)

    def test_retry_until_separable(self):
        # First pass inverted (hit slower than miss: hopeless noise),
        # second pass clean: the calibration retries with doubled samples.
        result = calibrate_threshold(_ScriptedProcess([(260, 100), (100, 260)]))
        assert result.attempts == 2
        assert result.samples_used == 128
        assert result.separation == pytest.approx(160.0)

    def test_give_up_after_max_attempts(self):
        with pytest.raises(RuntimeError, match="calibration failed after 3"):
            calibrate_threshold(_ScriptedProcess([(200, 200)]))

    def test_result_is_a_latency_threshold(self):
        from repro.attack.timing import LatencyThreshold

        result = calibrate_threshold(_ScriptedProcess([(100, 260)]))
        assert isinstance(result, LatencyThreshold)
        assert result.is_miss(int(result.threshold) + 1)
        assert not result.is_miss(int(result.threshold) - 1)

    def test_on_machine_first_pass(self):
        machine = Machine(MachineConfig().scaled_down())
        result = calibrate_threshold(machine.new_process("spy"))
        assert result.attempts == 1
        assert result.separation > 0


# ---------------------------------------------------------------------------
# supervisor detectors / budgets / hysteresis
# ---------------------------------------------------------------------------

def _supervisor(monkeypatch=None, healer=None, **overrides) -> AdaptiveSupervisor:
    defaults = dict(detect_patience=3, idle_patience=5, cooldown_sweeps=4)
    defaults.update(overrides)
    process = _ScriptedProcess([(100, 260)])
    sup = AdaptiveSupervisor(
        process, config=AdaptiveConfig(**defaults), healer=healer
    )
    return sup


class TestAdaptiveConfig:
    def test_defaults_valid(self):
        AdaptiveConfig()

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(saturation_fraction=0.0)
        with pytest.raises(ValueError):
            AdaptiveConfig(saturation_fraction=1.5)
        with pytest.raises(ValueError):
            AdaptiveConfig(detect_patience=0)
        with pytest.raises(ValueError):
            AdaptiveConfig(cooldown_sweeps=-1)


class TestSupervisorDetectors:
    def test_saturation_triggers_recalibration(self):
        sup = _supervisor()
        events = [sup.observe(3, 3) for _ in range(10)]
        fired = [e for e in events if e is not None]
        assert fired and fired[0].kind == "recalibrate"
        # Saturation persists, so after each cooldown the supervisor
        # detects and recalibrates again — at least once, never thrashing.
        assert sup.stats.saturation_detections >= 1
        assert 1 <= sup.stats.recalibrations <= 2
        assert sup.threshold is not None
        assert sup.threshold.threshold == pytest.approx(180.0)

    def test_recalibration_pushes_threshold_to_tracked_sets(self):
        class _Set:
            threshold = None

        sup = _supervisor()
        tracked = [_Set(), _Set()]
        sup.track(*tracked)
        for _ in range(10):
            sup.observe(3, 3)
        for es in tracked:
            assert es.threshold is sup.threshold

    def test_mixed_activity_resets_streaks(self):
        sup = _supervisor()
        for fired in (3, 3, 1, 3, 3, 0, 3, 3):
            assert sup.observe(fired, 3) is None
        assert sup.stats.recalibrations == 0

    def test_idle_triggers_heal(self):
        healed = []
        sup = _supervisor(healer=lambda: healed.append(1) or ["new"])
        events = [sup.observe(0, 3) for _ in range(10)]
        fired = [e for e in events if e is not None]
        assert fired and fired[0].kind == "heal"
        assert fired[0].payload == ["new"]
        assert sup.stats.idle_detections >= 1
        assert sup.stats.heals >= 1
        assert healed

    def test_heal_without_healer_is_a_noop(self):
        sup = _supervisor()
        assert all(sup.observe(0, 3) is None for _ in range(20))
        assert sup.stats.heals == 0

    def test_cooldown_spaces_recoveries(self):
        sup = _supervisor(cooldown_sweeps=50)
        events = [sup.observe(3, 3) for _ in range(30)]
        assert sum(e is not None for e in events) == 1

    def test_recalibration_budget_escalates_to_heal(self):
        healed = []
        sup = _supervisor(
            healer=lambda: healed.append(1) or ["new"],
            max_recalibrations=1,
            cooldown_sweeps=0,
        )
        kinds = [e.kind for e in (sup.observe(3, 3) for _ in range(8)) if e]
        assert kinds[0] == "recalibrate"
        assert "heal" in kinds[1:]

    def test_heal_budget_exhausts(self):
        sup = _supervisor(
            healer=lambda: ["new"], max_heals=2, cooldown_sweeps=0
        )
        for _ in range(40):
            sup.observe(0, 3)
        assert sup.stats.heals == 2

    def test_healer_failure_counts(self):
        def broken():
            raise RuntimeError("mapping gone")

        sup = _supervisor(healer=broken)
        events = [e for e in (sup.observe(0, 3) for _ in range(10)) if e]
        assert events and events[0].kind == "heal_failed"
        assert sup.stats.heal_failures >= 1
        assert sup.stats.heals == 0

    def test_empty_sweep_total_ignored(self):
        sup = _supervisor()
        assert sup.observe(0, 0) is None

    def test_confidence_tracks_degraded_sweeps(self):
        sup = _supervisor()
        assert sup.confidence == 1.0
        sup.observe(1, 3)
        sup.observe(3, 3)
        assert sup.confidence == pytest.approx(0.5)

    def test_history_summarizes_events(self):
        sup = _supervisor()
        for _ in range(10):
            sup.observe(3, 3)
        history = sup.history()
        assert history and history[0][1] == "recalibrate"
        assert all(len(entry) == 3 for entry in history)


class TestChaseHooks:
    def test_timeout_patience_then_heal(self):
        sup = _supervisor(
            healer=lambda: ["rebuilt"], chase_timeout_patience=3, cooldown_sweeps=0
        )
        assert sup.note_timeout() is None
        assert sup.note_timeout() is None
        event = sup.note_timeout()
        assert event is not None and event.kind == "heal"
        assert sup.stats.chase_resyncs == 1

    def test_hit_resets_timeout_streak(self):
        sup = _supervisor(
            healer=lambda: ["rebuilt"], chase_timeout_patience=2, cooldown_sweeps=0
        )
        for _ in range(6):
            assert sup.note_timeout() is None
            sup.note_hit()
        assert sup.stats.chase_resyncs == 0

    def test_sequence_sync_loss_counted(self):
        sup = _supervisor()
        sup.note_sequence_sync_loss()
        assert sup.stats.sequence_sync_losses == 1


class TestAdaptiveStats:
    def test_total_and_dict_cover_all_fields(self):
        stats = AdaptiveStats(recalibrations=2, heals=1)
        assert stats.total() == 3
        assert stats.to_dict()["recalibrations"] == 2
        assert set(stats.to_dict()) >= {
            "recalibrations",
            "heals",
            "saturation_detections",
            "idle_detections",
            "chase_resyncs",
            "sequence_sync_losses",
        }


# ---------------------------------------------------------------------------
# end-to-end: self-healing against a re-keying backend
# ---------------------------------------------------------------------------

def _covert_run(adaptive: bool, backend: str = "keyed:epoch=6000"):
    from repro.analysis.lfsr import lfsr_symbols
    from repro.attack.covert import CovertReceiver, CovertTrojan, run_covert_channel
    from repro.attack.setup import (
        MonitorFactory,
        adaptive_covert_supervisor,
        unique_buffer_positions,
    )

    faults = replace(get_profile("drift"), schedule="step")
    cfg = replace(
        MachineConfig().scaled_down(),
        faults=faults,
        cache_backend=backend,
        adaptive=adaptive,
    )
    machine = Machine(cfg)
    machine.install_nic()
    spy = machine.new_process("spy")
    factory = MonitorFactory(machine, spy, calibrate_threshold(spy), huge_pages=4)
    position = unique_buffer_positions(machine)[0]
    supervisor = (
        adaptive_covert_supervisor(factory, [position]) if adaptive else None
    )
    receiver = CovertReceiver(
        spy, [factory.stream_monitors(position)], supervisor=supervisor
    )
    trojan = CovertTrojan(
        alphabet=3, ring_size=len(machine.ring.buffers), rate_pps=400_000
    )
    symbols = lfsr_symbols(24, 3)
    report = run_covert_channel(machine, receiver, trojan, symbols, 30_000)
    return report, supervisor, machine


class TestSelfHealingEndToEnd:
    def test_keyed_rekey_heals_and_recovers(self):
        report, supervisor, machine = _covert_run(adaptive=True)
        assert machine.llc.mapping_epoch > 0  # the backend did re-key
        assert supervisor.stats.heals > 0
        assert supervisor.stats.recalibrations > 0
        baseline, _, _ = _covert_run(adaptive=False)
        assert report.error_rate <= baseline.error_rate

    def test_healed_monitors_follow_the_new_mapping(self):
        _report, supervisor, machine = _covert_run(adaptive=True)
        heal_events = [e for e in supervisor.events if e.kind == "heal"]
        assert heal_events
        streams = heal_events[-1].payload
        # The rebuilt monitors must target live cache sets: under the
        # current mapping every stream set re-resolves to a nonempty
        # eviction set (stale sets would have scattered).
        for stream in streams:
            for es in stream.sets():
                assert len(es.addrs) > 0

    def test_nonadaptive_run_constructs_no_supervisor(self):
        report, supervisor, _machine = _covert_run(adaptive=False)
        assert supervisor is None
        assert report.symbols_sent == 24


# ---------------------------------------------------------------------------
# drift-resilience experiment determinism
# ---------------------------------------------------------------------------

def _cells_fingerprint(result) -> list:
    return [
        (
            c.schedule,
            c.backend,
            c.adaptive,
            c.error_rate,
            c.symbols_decoded,
            c.rekeys,
            tuple(sorted(c.adaptive_totals.items())),
            tuple(c.recoveries),
        )
        for c in result.cells
    ]


class TestDriftResilience:
    def test_jobs_invariance(self):
        from repro.experiments import run_drift_resilience
        from repro.runner import ExperimentRunner

        fingerprints = []
        for jobs in (1, 2):
            result = run_drift_resilience(
                backends=("keyed:epoch=6000",),
                runner=ExperimentRunner(jobs=jobs, use_cache=False),
            )
            fingerprints.append(_cells_fingerprint(result))
        assert fingerprints[0] == fingerprints[1]

    def test_adaptive_never_loses_and_wins_somewhere(self):
        from repro.experiments import run_drift_resilience
        from repro.runner import ExperimentRunner

        result = run_drift_resilience(
            runner=ExperimentRunner(jobs=1, use_cache=False)
        )
        headline = result.headline_metrics()
        assert headline["adaptive_cell_regressions"] == 0.0
        wins = [
            s
            for s in ("drift", "step", "burst")
            if headline[f"{s}_adaptive_error"] < headline[f"{s}_static_error"]
        ]
        assert wins, f"adaptive strictly better nowhere: {headline}"

    def test_context_metrics_carry_recovery_totals(self):
        from repro.experiments.drift_resilience import (
            DriftCell,
            DriftResilienceResult,
        )

        result = DriftResilienceResult(
            cells=[
                DriftCell(
                    schedule="drift",
                    backend="modulo",
                    adaptive=True,
                    adaptive_totals={"recalibrations": 2, "heals": 1},
                    faults_injected=10,
                ),
            ]
        )
        context = result.context_metrics()
        assert context["adaptive.recalibrations"] == 2.0
        assert context["adaptive.heals"] == 1.0
        assert context["faults.injected"] == 10.0
