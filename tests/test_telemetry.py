"""Telemetry: tracer/metrics units, trace schema, zero-overhead guarantee.

The contract under test is twofold: with telemetry installed, a run
exports a schema-valid Chrome ``trace_event`` file containing the whole
pipeline (prime, probe, dma-fill, driver-refill) and mergeable metrics;
with telemetry absent (the default), results are bit-identical to the
pre-telemetry instruction stream.
"""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.core.config import MachineConfig
from repro.core.events import EventQueue
from repro.experiments.mapping import run_fig5, run_fig6
from repro.telemetry import (
    PROBE_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    PhaseTimer,
    ShardTelemetryPayload,
    Telemetry,
    TelemetrizedShardFn,
    Tracer,
    current_telemetry,
    merge_shard_payloads,
    session,
)

VALID_PHASES = {"X", "i", "C", "M"}


class TestTracer:
    def test_span_records_complete_event(self):
        tracer = Tracer()
        with tracer.span("work", cat="test", args={"k": 1}):
            pass
        (event,) = tracer.events
        assert event["name"] == "work"
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert event["args"] == {"k": 1}
        assert {"ts", "pid", "tid", "cat"} <= set(event)

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("work"):
            pass
        tracer.instant("point")
        tracer.counter("count", 3)
        assert tracer.events == []
        # the disabled span is a shared singleton — no per-call allocation
        assert tracer.span("a") is tracer.span("b")

    def test_instant_and_counter_shapes(self):
        tracer = Tracer()
        tracer.instant("point", args={"line": 7})
        tracer.counter("misses", {"misses": 4})
        tracer.counter("scalar", 2.5)
        instant, counter, scalar = tracer.events
        assert instant["ph"] == "i" and instant["s"] == "t"
        assert counter["ph"] == "C" and counter["args"] == {"misses": 4}
        assert scalar["args"] == {"value": 2.5}

    def test_max_events_drops_and_counts(self):
        tracer = Tracer(max_events=2)
        for _ in range(5):
            tracer.instant("x")
        assert len(tracer.events) == 2
        assert tracer.dropped == 3
        assert tracer.chrome_trace()["otherData"]["dropped_events"] == 3

    def test_absorb_rewrites_pid_as_shard_track(self):
        parent = Tracer()
        worker = Tracer()
        worker.instant("from-worker")
        parent.absorb(worker.events, pid=104)
        assert parent.events[-1]["pid"] == 104
        trace = parent.chrome_trace()
        names = {
            e["args"]["name"] for e in trace["traceEvents"] if e["ph"] == "M"
        }
        assert "shard-104" in names

    def test_write_chrome_round_trips(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        path = tmp_path / "t.json"
        assert tracer.write_chrome(str(path)) == 1
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert any(e["name"] == "s" for e in loaded["traceEvents"])

    def test_write_jsonl_one_object_per_line(self, tmp_path):
        tracer = Tracer()
        tracer.instant("a")
        tracer.instant("b")
        path = tmp_path / "t.jsonl"
        assert tracer.write_jsonl(str(path)) == 2
        lines = path.read_text().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        registry.gauge("depth").set(7.5)
        registry.histogram("lat").observe(40)
        snap = registry.snapshot()
        assert snap["counters"]["hits"] == 5
        assert snap["gauges"]["depth"] == 7.5
        assert snap["histograms"]["lat"]["count"] == 1

    def test_histogram_bucket_placement(self):
        hist = Histogram(buckets=(10, 20))
        for v in (5, 10, 15, 99):
            hist.observe(v)
        assert hist.counts == [2, 1, 1]  # <=10, <=20, overflow
        assert hist.min == 5 and hist.max == 99
        assert hist.mean == pytest.approx((5 + 10 + 15 + 99) / 4)

    def test_histogram_merge_requires_same_buckets(self):
        a, b = Histogram(buckets=(10, 20)), Histogram(buckets=(10, 20))
        a.observe(5)
        b.observe(99)
        a.merge_dict(b.to_dict())
        assert a.count == 2 and a.counts == [1, 0, 1]
        with pytest.raises(ValueError):
            a.merge_dict(Histogram(buckets=(1, 2)).to_dict())

    def test_merge_snapshot_folds_worker_state(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("n").inc(2)
        worker.counter("n").inc(3)
        worker.histogram("lat").observe(42)
        parent.merge_snapshot(worker.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["n"] == 5
        assert snap["histograms"]["lat"]["count"] == 1
        assert snap["histograms"]["lat"]["buckets"] == list(PROBE_LATENCY_BUCKETS)

    def test_phase_deltas(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(10)
        with registry.phase("windowed"):
            registry.counter("n").inc(7)
            registry.histogram("lat").observe(1)
        assert registry.phases["windowed"] == {"n": 7, "lat.observations": 1}
        # repeated phases accumulate
        with registry.phase("windowed"):
            registry.counter("n").inc(1)
        assert registry.phases["windowed"]["n"] == 8

    def test_end_phase_without_begin_raises(self):
        with pytest.raises(RuntimeError):
            MetricsRegistry().end_phase()


class TestPhaseTimer:
    def test_accumulates_named_phases(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        assert set(timer.seconds) == {"a", "b"}
        assert timer.seconds["a"] >= 0

    def test_emits_runner_spans_when_traced(self):
        tracer = Tracer()
        timer = PhaseTimer(tracer=tracer, span_prefix="runner:x:")
        with timer.phase("plan"):
            pass
        assert tracer.span_names() == {"runner:x:plan"}


class TestAmbientSession:
    def test_nothing_installed_by_default(self):
        assert current_telemetry() is None

    def test_session_installs_and_restores(self):
        telemetry = Telemetry.create()
        with session(telemetry) as t:
            assert t is telemetry
            assert current_telemetry() is telemetry
        assert current_telemetry() is None

    def test_sessions_nest(self):
        outer, inner = Telemetry.create(), Telemetry.create()
        with session(outer):
            with session(inner):
                assert current_telemetry() is inner
            assert current_telemetry() is outer


class TestShardTelemetry:
    def test_parent_process_passthrough(self):
        fn = TelemetrizedShardFn(
            lambda cfg, params, shard: "result", trace=True, metrics=True,
            max_events=100,
        )
        payload = fn(None, {}, None)
        assert payload.result == "result"
        assert payload.trace_events is None  # parent's ambient records directly

    def test_merge_folds_into_ambient(self):
        worker = Tracer()
        worker.instant("w")
        payloads = [
            ShardTelemetryPayload(
                result=1,
                trace_events=list(worker.events),
                metrics_snapshot={"counters": {"n": 3}},
            ),
            ShardTelemetryPayload(result=2),
        ]
        telemetry = Telemetry.create()
        with session(telemetry):
            assert merge_shard_payloads(payloads) == [1, 2]
        assert telemetry.metrics.snapshot()["counters"]["n"] == 3
        assert telemetry.tracer.events[0]["pid"] == 100

    def test_merge_without_ambient_returns_results(self):
        payloads = [ShardTelemetryPayload(result="r")]
        assert merge_shard_payloads(payloads) == ["r"]


class TestEventQueueTombstones:
    def test_cancel_is_idempotent_and_postfire_noop(self):
        q = EventQueue()
        fired = []
        ev = q.schedule(1, lambda: fired.append(1))
        q.run_due(1)
        assert len(q) == 0
        ev.cancel()  # after firing: must not corrupt the live count
        ev.cancel()
        assert len(q) == 0 and fired == [1]

    def test_mass_cancel_compacts_heap(self):
        q = EventQueue()
        events = [q.schedule(t + 1, lambda: None) for t in range(200)]
        assert q.heap_size == 200
        for ev in events[:150]:
            ev.cancel()
        # eager compaction keeps tombstones from ever outnumbering live
        # entries on a big heap (it fires mid-way, so the bound is 2x live)
        assert len(q) == 50
        assert q.heap_size < 200
        assert q.heap_size <= 2 * len(q)

    def test_tombstones_dropped_lazily_on_pop(self):
        q = EventQueue()
        fired = []
        keep = q.schedule(5, lambda: fired.append("keep"))
        for t in (1, 2, 3):
            q.schedule(t, lambda: fired.append("cancelled")).cancel()
        assert len(q) == 1
        assert q.run_due(10) == 1
        assert fired == ["keep"]
        assert q.heap_size == 0

    def test_clear_detaches_events(self):
        q = EventQueue()
        ev = q.schedule(1, lambda: None)
        q.clear()
        ev.cancel()  # must not go negative through a dangling backref
        assert len(q) == 0


def _trace_fig5(config):
    telemetry = Telemetry.create(trace=True, metrics=True)
    with session(telemetry):
        result = run_fig5(config)
    return result, telemetry


class TestTraceSchema:
    """Golden-schema test: a tiny fixed-seed run exports a valid trace."""

    @pytest.fixture(scope="class")
    def traced(self):
        return _trace_fig5(MachineConfig().scaled_down())

    def test_every_event_is_schema_valid(self, traced):
        _, telemetry = traced
        trace = telemetry.tracer.chrome_trace()
        assert trace["displayTimeUnit"] == "ms"
        assert trace["traceEvents"], "trace must not be empty"
        for event in trace["traceEvents"]:
            assert event["ph"] in VALID_PHASES
            assert {"name", "ph", "ts", "pid"} <= set(event)
            if event["ph"] == "X":
                assert event["dur"] >= 0 and "tid" in event
            if event["ph"] == "C":
                assert isinstance(event["args"], dict)

    def test_trace_covers_the_whole_pipeline(self, traced):
        _, telemetry = traced
        names = telemetry.tracer.span_names()
        assert {"prime", "probe", "dma-fill", "driver-refill"} <= names

    def test_trace_is_valid_json_on_disk(self, traced, tmp_path):
        _, telemetry = traced
        path = tmp_path / "fig5.trace.json"
        n = telemetry.tracer.write_chrome(str(path))
        assert n == len(telemetry.tracer.events)
        json.loads(path.read_text())  # must parse

    def test_probe_latency_histogram_collected(self, traced):
        _, telemetry = traced
        snap = telemetry.metrics.snapshot()
        hist = snap["histograms"]["probe.latency_cycles"]
        assert hist["count"] > 0
        assert hist["buckets"] == list(PROBE_LATENCY_BUCKETS)
        assert snap["counters"]["probe.accesses"] >= hist["count"]


class TestZeroOverheadIdentity:
    """Telemetry off (the default) must not perturb any result bit."""

    def test_fig5_bit_identical_with_and_without(self):
        config = MachineConfig().scaled_down()
        plain = run_fig5(config)
        traced, _ = _trace_fig5(config)
        again = run_fig5(config)
        assert plain.counts == traced.counts == again.counts
        assert plain.n_buffers == traced.n_buffers

    def test_fig6_bit_identical_with_and_without(self):
        config = MachineConfig().scaled_down()
        plain = run_fig6(instances=6, config=config)
        with session(Telemetry.create(trace=True, metrics=True)):
            traced = run_fig6(instances=6, config=config)
        assert plain.histogram == traced.histogram


class TestCliTelemetryFlags:
    @pytest.fixture
    def cache_dir(self, tmp_path):
        return str(tmp_path / "cache")

    def test_trace_and_metrics_flags_write_files(self, tmp_path, capsys, cache_dir):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        assert (
            cli.main(
                [
                    "fig5",
                    "--trace", str(trace),
                    "--metrics", str(metrics),
                    "--cache-dir", cache_dir,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[telemetry] wrote" in out
        loaded = json.loads(trace.read_text())
        names = {e["name"] for e in loaded["traceEvents"]}
        assert {"prime", "probe", "dma-fill", "driver-refill"} <= names
        snapshot = json.loads(metrics.read_text())
        assert snapshot["runner"][0]["experiment"] == "fig5"
        assert "phase_seconds" in snapshot["runner"][0]
        # every histogram snapshot carries interpolated percentiles, and
        # the CLI prints them as a summary table
        for hist in snapshot["metrics"]["histograms"].values():
            assert {"p50", "p95", "p99"} <= set(hist["percentiles"])
        assert "p95" in out
        assert "probe.latency_cycles" in out

    def test_trace_subcommand_defaults_output_path(
        self, tmp_path, monkeypatch, capsys, cache_dir
    ):
        monkeypatch.chdir(tmp_path)
        assert cli.main(["trace", "fig5", "--cache-dir", cache_dir]) == 0
        assert (tmp_path / "fig5.trace.json").exists()

    def test_trace_forces_reexecution_past_warm_cache(
        self, tmp_path, capsys, cache_dir
    ):
        assert cli.main(["fig5", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        trace = tmp_path / "t.json"
        assert cli.main(
            ["fig5", "--trace", str(trace), "--cache-dir", cache_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "[cache]" not in out  # no hit: the run actually executed
        assert json.loads(trace.read_text())["traceEvents"]

    def test_trace_without_target_rejected(self, cache_dir):
        with pytest.raises(SystemExit):
            cli.main(["trace"])

    def test_stray_positional_rejected(self, cache_dir):
        with pytest.raises(SystemExit):
            cli.main(["fig5", "fig6", "--cache-dir", cache_dir])

    def test_sharded_trace_merges_worker_tracks(self, tmp_path, capsys, cache_dir):
        trace = tmp_path / "t.json"
        assert (
            cli.main(
                [
                    "fig6",
                    "--jobs", "2",
                    "--trace", str(trace),
                    "--cache-dir", cache_dir,
                ]
            )
            == 0
        )
        loaded = json.loads(trace.read_text())
        pids = {e["pid"] for e in loaded["traceEvents"]}
        assert any(pid >= 100 for pid in pids), "expected per-shard tracks"
