"""Signal-quality estimators and their hook sites.

Two contracts: the pure estimators (SNR, threshold margin, windowed
divergence, edit breakdown, histogram percentiles) compute the documented
quantities; and the hook sites populate ``quality.*`` metrics under an
enabled session while leaving results bit-identical — the recorders only
observe values the hot path already produced.
"""

from __future__ import annotations

import pytest

from repro.analysis.levenshtein import edit_breakdown, levenshtein
from repro.core.config import MachineConfig
from repro.telemetry import Histogram, Telemetry, session
from repro.telemetry.quality import (
    DivergenceReport,
    metric_orientation,
    quality_registry,
    set_hooks_enabled,
    snr,
    threshold_margin,
    windowed_divergence,
)


class TestSnrAndMargin:
    def test_snr_is_gap_over_pooled_spread(self):
        assert snr(40.0, 120.0, 4.0, 4.0) == pytest.approx(20.0)

    def test_snr_pooled_std_floored_at_one_cycle(self):
        # noiseless timing model: zero spread must not divide by zero
        assert snr(40.0, 120.0, 0.0, 0.0) == pytest.approx(80.0)

    def test_margin_centred_threshold_is_one(self):
        assert threshold_margin(40.0, 120.0, 80.0) == pytest.approx(1.0)

    def test_margin_touching_a_mean_is_zero(self):
        assert threshold_margin(40.0, 120.0, 40.0) == 0.0

    def test_margin_outside_gap_is_negative(self):
        assert threshold_margin(40.0, 120.0, 20.0) < 0.0

    def test_margin_degenerate_gap_is_zero(self):
        assert threshold_margin(100.0, 100.0, 100.0) == 0.0


class TestEditBreakdown:
    def test_pure_substitution(self):
        assert edit_breakdown([1, 2, 3], [1, 9, 3]) == (1, 0, 0)

    def test_pure_insertion(self):
        assert edit_breakdown([1, 2], [1, 7, 2]) == (0, 1, 0)

    def test_pure_deletion(self):
        assert edit_breakdown([1, 2, 3], [1, 3]) == (0, 0, 1)

    def test_empty_sides(self):
        assert edit_breakdown([], [1, 2]) == (0, 2, 0)
        assert edit_breakdown([1, 2], []) == (0, 0, 2)

    @pytest.mark.parametrize(
        "sent,received",
        [
            ([1, 2, 3, 4], [2, 3, 4, 5]),
            ([0, 1, 0, 1, 2], [1, 0, 2, 2]),
            (list(range(10)), [0, 1, 9, 3, 4, 4, 5, 6, 7, 8, 9]),
        ],
    )
    def test_breakdown_sums_to_levenshtein(self, sent, received):
        subs, ins, dels = edit_breakdown(sent, received)
        assert subs + ins + dels == levenshtein(sent, received)
        # length bookkeeping: received = sent - deletions + insertions
        assert len(received) == len(sent) - dels + ins


class TestWindowedDivergence:
    def test_perfect_recovery_is_zero_everywhere(self):
        seq = list(range(32))
        report = windowed_divergence(seq, seq, window=8)
        assert report.overall == 0.0
        assert report.worst == 0.0
        assert all(v == 0.0 for v in report.per_window)

    def test_rotation_invariant(self):
        truth = list(range(32))
        rotated = truth[5:] + truth[:5]
        assert windowed_divergence(rotated, truth).overall == 0.0

    def test_local_garble_shows_as_hot_window(self):
        truth = list(range(32))
        garbled = truth[:24] + [99, 98, 97, 96, 95, 94, 93, 92]
        report = windowed_divergence(garbled, truth, window=8)
        assert report.worst == 1.0  # the final window fully diverged
        assert report.per_window[0] == 0.0
        assert report.overall <= report.worst

    def test_empty_truth(self):
        assert windowed_divergence([], []).overall == 0.0
        assert windowed_divergence([1], []).overall == 1.0

    def test_report_means(self):
        report = DivergenceReport(overall=0.5, per_window=(0.2, 0.4), window=4)
        assert report.worst == 0.4
        assert report.mean_windowed == pytest.approx(0.3)


class TestMetricOrientation:
    @pytest.mark.parametrize(
        "name",
        ["seq_error_rate", "divergence_worst_window", "max_throughput_loss_percent",
         "out_of_sync", "profiling_seconds", "probe_sweep_ms"],
    )
    def test_lower_is_better(self, name):
        assert metric_orientation(name) == "lower"

    @pytest.mark.parametrize(
        "name", ["accuracy_ddio", "sweep_speedup", "binary_best_bps"]
    )
    def test_higher_is_better(self, name):
        assert metric_orientation(name) == "higher"

    @pytest.mark.parametrize(
        "name", ["empty_set_fraction", "sets_per_instance", "keyed_rekeys"]
    )
    def test_descriptive_metrics_are_info(self, name):
        assert metric_orientation(name) == "info"


class TestHistogramPercentiles:
    def test_interpolates_within_buckets(self):
        hist = Histogram(buckets=(10.0, 20.0, 40.0))
        for v in (2, 4, 6, 8, 12, 14, 30, 50):
            hist.observe(v)
        p50 = hist.percentile(50.0)
        assert 4 <= p50 <= 12
        assert hist.percentile(0.0) == hist.min
        assert hist.percentile(100.0) == hist.max

    def test_monotone_in_q(self):
        hist = Histogram(buckets=(10.0, 100.0, 1000.0))
        for v in (1, 5, 50, 500, 5000, 90, 9, 900):
            hist.observe(v)
        qs = [5, 25, 50, 75, 95, 99]
        values = [hist.percentile(q) for q in qs]
        assert values == sorted(values)
        assert all(hist.min <= v <= hist.max for v in values)

    def test_empty_and_invalid(self):
        hist = Histogram(buckets=(10.0,))
        assert hist.percentile(50.0) == 0.0
        with pytest.raises(ValueError):
            hist.percentile(-1.0)
        with pytest.raises(ValueError):
            hist.percentile(101.0)

    def test_snapshot_carries_percentiles(self):
        hist = Histogram(buckets=(10.0, 20.0))
        hist.observe(5)
        snap = hist.to_dict()
        assert set(snap["percentiles"]) == {"p50", "p95", "p99"}

    def test_merged_snapshots_give_identical_percentiles(self):
        # the jobs-invariance property: observations split across worker
        # registries and merged must yield the same percentiles as one
        whole = Histogram(buckets=(10.0, 20.0, 40.0))
        a = Histogram(buckets=(10.0, 20.0, 40.0))
        b = Histogram(buckets=(10.0, 20.0, 40.0))
        values = [3, 7, 11, 13, 22, 35, 50, 8]
        for i, v in enumerate(values):
            whole.observe(v)
            (a if i % 2 else b).observe(v)
        a.merge_dict(b.to_dict())
        assert a.percentiles() == whole.percentiles()


class TestQualityRegistry:
    def test_none_without_telemetry(self):
        assert quality_registry(None) is None

    def test_none_when_metrics_disabled(self):
        telemetry = Telemetry.create(trace=True, metrics=False)
        assert quality_registry(telemetry) is None

    def test_registry_when_enabled(self):
        telemetry = Telemetry.create(trace=False, metrics=True)
        assert quality_registry(telemetry) is telemetry.metrics

    def test_hooks_switch_disables(self):
        telemetry = Telemetry.create(trace=False, metrics=True)
        previous = set_hooks_enabled(False)
        try:
            assert quality_registry(telemetry) is None
        finally:
            set_hooks_enabled(previous)
        assert quality_registry(telemetry) is telemetry.metrics


def _calibrated_machine(config):
    from repro.attack.timing import calibrate_threshold
    from repro.core.machine import Machine

    machine = Machine(config)
    machine.install_nic()
    spy = machine.new_process("spy")
    threshold = calibrate_threshold(spy)
    return machine, spy, threshold


class TestHookSites:
    """The attack layers populate quality.* under an enabled session."""

    @pytest.fixture(scope="class")
    def quality_snapshot(self):
        from repro.attack.evictionset import OracleEvictionSetBuilder
        from repro.attack.primeprobe import ProbeMonitor

        telemetry = Telemetry.create(trace=False, metrics=True)
        with session(telemetry):
            _, spy, threshold = _calibrated_machine(
                MachineConfig().scaled_down()
            )
            builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=4)
            groups = builder.build_page_aligned_groups(block=0)
            ProbeMonitor(spy, groups).sample(4, wait_cycles=10_000)
        return telemetry.metrics.snapshot()

    def test_calibration_metrics_recorded(self, quality_snapshot):
        counters = quality_snapshot["counters"]
        gauges = quality_snapshot["gauges"]
        assert counters["quality.calibration.runs"] == 1
        assert counters["quality.calibration.attempts"] >= 1
        assert gauges["quality.calibration.snr_last"] > 0
        assert 0.0 <= gauges["quality.calibration.margin_last"] <= 1.0
        assert quality_snapshot["histograms"]["quality.calibration.snr"]["count"] == 1

    def test_probe_sweep_metrics_recorded(self, quality_snapshot):
        hist = quality_snapshot["histograms"]["quality.probe.margin_cycles"]
        assert hist["count"] > 0

    def test_no_quality_metrics_without_session(self):
        from repro.attack.timing import calibrate_threshold  # noqa: F401

        telemetry = Telemetry.create(trace=False, metrics=True)
        # nothing installed: hook sites see no ambient telemetry
        _calibrated_machine(MachineConfig().scaled_down())
        assert "quality.calibration.runs" not in (
            telemetry.metrics.snapshot()["counters"]
        )


class TestBitIdentityAtHookSites:
    """Quality hooks must not perturb results — on, off, or absent."""

    def test_table1_identical_with_and_without_metrics(self):
        from repro.experiments.sequencing import run_table1

        kwargs = dict(
            n_monitored=8,
            n_samples=400,
            packet_rate=15_000,
            probe_rate_hz=16_000,
            huge_pages=4,
        )
        config = MachineConfig().scaled_down()
        plain = run_table1(config, **kwargs)
        with session(Telemetry.create(trace=False, metrics=True)):
            metered = run_table1(config, **kwargs)
        assert plain.recovered == metered.recovered
        assert plain.truth == metered.truth
        assert plain.distance == metered.distance
        assert plain.divergence == metered.divergence

    def test_covert_channel_identical_with_and_without_metrics(self):
        from repro.experiments.covert_channel import run_fig10

        config = MachineConfig().scaled_down()
        plain = run_fig10(config, n_symbols=12, huge_pages=4)
        with session(Telemetry.create(trace=False, metrics=True)):
            metered = run_fig10(config, n_symbols=12, huge_pages=4)
        assert plain.received == metered.received
        assert plain.sent == metered.sent

    def test_channel_report_breakdown_preserves_error_rate(self):
        from repro.analysis.capacity import evaluate_channel

        report = evaluate_channel(
            [0, 1, 2, 0, 1], [0, 1, 0, 1, 1], elapsed_seconds=1.0, alphabet=3
        )
        assert report.substitutions + report.insertions + report.deletions == (
            report.edit_distance
        )
        assert report.error_rate == report.edit_distance / report.symbols_sent
