"""Tests for sequence recovery (Algorithm 1) and packet chasing."""

import pytest

from repro.analysis.levenshtein import cyclic_levenshtein
from repro.attack.evictionset import OracleEvictionSetBuilder
from repro.attack.groundtruth import (
    buffer_flat_sets,
    buffers_per_page_aligned_set,
    true_group_sequence,
)
from repro.attack.sequencer import Sequencer, SequencerConfig, place_candidate
from repro.attack.setup import MonitorFactory, spaced_positions, unique_buffer_positions
from repro.net.traffic import ConstantStream


class TestGroundTruth:
    def test_buffer_flat_sets_one_per_buffer(self, nic_machine):
        flats = buffer_flat_sets(nic_machine)
        assert len(flats) == len(nic_machine.ring.buffers)

    def test_counts_sum_to_ring_size(self, nic_machine):
        counts = buffers_per_page_aligned_set(nic_machine)
        assert sum(counts.values()) == len(nic_machine.ring.buffers)

    def test_true_sequence_collapses_repeats(self, nic_machine, spy, threshold):
        builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=4)
        groups = builder.build_page_aligned_groups()
        seq = true_group_sequence(nic_machine, spy, groups)
        for a, b in zip(seq, seq[1:]):
            assert a != b

    def test_no_nic_raises(self, machine):
        with pytest.raises(RuntimeError):
            buffer_flat_sets(machine)


class TestSequencer:
    @pytest.fixture
    def recovered(self, nic_machine, spy, threshold):
        builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=4)
        groups = builder.build_page_aligned_groups()[:12]
        sender = ConstantStream(size=64, rate_pps=15_000, protocol="broadcast")
        sender.attach(nic_machine, nic_machine.nic)
        config = SequencerConfig(n_samples=2500, wait_cycles=180_000)
        sequencer = Sequencer(spy, groups, config)
        sequence, trace = sequencer.recover()
        sender.stop()
        truth = true_group_sequence(nic_machine, spy, groups)
        return sequence, truth, trace

    def test_recovers_ring_order(self, recovered):
        sequence, truth, _trace = recovered
        assert truth, "expected monitored groups to host buffers"
        distance = cyclic_levenshtein(sequence, truth)
        assert distance / len(truth) <= 0.25

    def test_sample_trace_saw_activity(self, recovered):
        _seq, _truth, trace = recovered
        assert sum(trace.activity_counts()) > 0

    def test_needs_three_sets(self, spy, threshold):
        from repro.attack.evictionset import EvictionSet

        sets = [EvictionSet(spy, [0x1000], threshold)] * 2
        with pytest.raises(ValueError):
            Sequencer(spy, sets)

    def test_empty_graph_raises(self, nic_machine, spy, threshold):
        builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=4)
        groups = builder.build_page_aligned_groups()[:4]
        sequencer = Sequencer(spy, groups, SequencerConfig(n_samples=5))
        with pytest.raises(RuntimeError):
            sequencer.make_sequence({})

    def test_build_graph_skips_self_loops(self, nic_machine, spy, threshold):
        from repro.attack.primeprobe import SampleTrace

        builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=4)
        groups = builder.build_page_aligned_groups()[:3]
        sequencer = Sequencer(spy, groups, SequencerConfig(n_samples=5))
        trace = SampleTrace(
            samples=[[1, 0, 0], [0, 1, 0], [0, 0, 1], [1, 0, 0]],
            times=[0, 1, 2, 3],
            set_labels=["a", "b", "c"],
        )
        graph = sequencer.build_graph(trace)
        for (prev, curr), successors in graph.items():
            assert prev != curr or (prev, curr) == (0, 0)


class TestPlaceCandidate:
    def test_inserts_between_neighbours(self):
        master = [1, 2, 3, 4]
        window = [2, 9, 3]
        assert place_candidate(master, window, 9) == [1, 2, 9, 3, 4]

    def test_appends_when_unplaced(self):
        assert place_candidate([1, 2], [1, 2], 9) == [1, 2]
        assert place_candidate([1, 2], [9], 9) == [1, 2, 9]

    def test_wraparound_neighbour(self):
        master = [1, 2, 3]
        window = [3, 9, 1]
        result = place_candidate(master, window, 9)
        assert result.index(9) == result.index(3) + 1


class TestChasing:
    def test_chase_follows_ring(self, nic_machine, spy, threshold):
        factory = MonitorFactory(nic_machine, spy, threshold, huge_pages=4)
        chaser = factory.full_ring_chaser(include_alt=False)
        sender = ConstantStream(size=256, rate_pps=50_000, protocol="broadcast")
        sender.attach(nic_machine, nic_machine.nic)
        result = chaser.chase(40, timeout_cycles=2_000_000, poll_wait=5_000)
        sender.stop()
        assert result.packets_seen == 40
        assert result.out_of_sync_rate < 0.2
        assert all(s == 4 for s in result.sizes)

    def test_chase_reads_sizes(self, nic_machine, spy, threshold):
        from repro.net.traffic import PatternStream

        factory = MonitorFactory(nic_machine, spy, threshold, huge_pages=4)
        chaser = factory.full_ring_chaser(include_alt=False)
        sizes = [64, 192, 256] * 10
        source = PatternStream(sizes, rate_pps=50_000, protocol="broadcast")
        chaser.prime_all()
        source.attach(nic_machine, nic_machine.nic)
        result = chaser.chase(
            30, timeout_cycles=2_000_000, poll_wait=5_000, prime=False
        )
        source.stop()
        # 64B -> blocks 0+1 (prefetch) => read as 2; 192B -> 3; 256B -> 4.
        assert result.sizes[:6] == [2, 3, 4, 2, 3, 4]

    def test_timeout_counts_misses(self, nic_machine, spy, threshold):
        factory = MonitorFactory(nic_machine, spy, threshold, huge_pages=4)
        chaser = factory.full_ring_chaser(include_alt=False)
        result = chaser.chase(5, timeout_cycles=50_000, poll_wait=5_000)
        assert result.packets_seen == 0
        assert result.misses > 0

    def test_monitor_requires_block0(self, spy, threshold):
        from repro.attack.chase import BufferMonitor
        from repro.attack.evictionset import EvictionSet

        es = EvictionSet(spy, [0x1000], threshold)
        with pytest.raises(ValueError):
            BufferMonitor(name="x", blocks={1: es})


class TestSetupHelpers:
    def test_unique_positions_truly_unique(self, nic_machine):
        positions = unique_buffer_positions(nic_machine)
        flats = buffer_flat_sets(nic_machine)
        for p in positions:
            assert flats.count(flats[p]) == 1

    def test_spaced_positions_spread(self):
        picked = spaced_positions(list(range(32)), 4, 32)
        assert len(picked) == 4
        gaps = [b - a for a, b in zip(picked, picked[1:])]
        assert min(gaps) >= 4

    def test_spaced_positions_insufficient(self):
        with pytest.raises(ValueError):
            spaced_positions([1, 2], 3, 32)

    def test_factory_monitor_targets_buffer(self, nic_machine, spy, threshold):
        factory = MonitorFactory(nic_machine, spy, threshold, huge_pages=4)
        monitor = factory.buffer_monitor(0, blocks=(0, 1), include_alt=True)
        llc = nic_machine.llc
        buffer = nic_machine.ring.buffers[nic_machine.ring.head]
        es0 = monitor.blocks[0]
        paddr = spy.addrspace.translate(es0.addrs[0])
        assert llc.flat_set_of(paddr) == llc.flat_set_of(buffer.dma_paddr)
        alt = monitor.alt_blocks[0]
        alt_paddr = spy.addrspace.translate(alt.addrs[0])
        assert llc.flat_set_of(alt_paddr) == llc.flat_set_of(
            buffer.page_paddr + 2048
        )
