"""Unit tests for virtual address spaces (4 KB and huge-page mappings)."""

import pytest

from repro.mem.addrspace import HUGE_PAGE_SIZE, AddressSpace
from repro.mem.physmem import PhysicalMemory


@pytest.fixture
def space():
    return AddressSpace(PhysicalMemory(size_bytes=1 << 26), "test")


class TestSmallPages:
    def test_mmap_translates(self, space):
        base = space.mmap(4)
        paddr = space.translate(base)
        assert paddr % space.page_size == 0

    def test_offset_preserved(self, space):
        base = space.mmap(1)
        assert space.translate(base + 123) % space.page_size == 123

    def test_unmapped_access_raises(self, space):
        with pytest.raises(ValueError, match="segfault"):
            space.translate(0xDEAD000)

    def test_pages_get_distinct_frames(self, space):
        base = space.mmap(8)
        frames = {space.translate(base + i * 4096) // 4096 for i in range(8)}
        assert len(frames) == 8

    def test_small_pages_not_physically_contiguous(self, space):
        """Unprivileged mappings land on randomised frames."""
        base = space.mmap(16)
        paddrs = [space.translate(base + i * 4096) for i in range(16)]
        deltas = {paddrs[i + 1] - paddrs[i] for i in range(15)}
        assert deltas != {4096}

    def test_munmap_frees(self, space):
        before = space.physmem.free_frames
        base = space.mmap(4)
        space.munmap(base, 4)
        assert space.physmem.free_frames == before

    def test_munmap_unmapped_raises(self, space):
        with pytest.raises(ValueError):
            space.munmap(0x7000_0000, 1)

    def test_zero_pages_rejected(self, space):
        with pytest.raises(ValueError):
            space.mmap(0)


class TestHugePages:
    def test_huge_page_physically_contiguous(self, space):
        base = space.mmap_huge(1)
        paddrs = [space.translate(base + i * 4096) for i in range(512)]
        assert all(paddrs[i + 1] - paddrs[i] == 4096 for i in range(511))

    def test_huge_page_aligned(self, space):
        base = space.mmap_huge(1)
        assert base % HUGE_PAGE_SIZE == 0
        assert space.translate(base) % HUGE_PAGE_SIZE == 0

    def test_low_21_bits_transparent(self, space):
        """Within a huge page, paddr low bits equal vaddr low bits — the
        property that lets the spy compute set indices of its addresses."""
        base = space.mmap_huge(2)
        for offset in (0, 64, 4096, 123456, HUGE_PAGE_SIZE + 8192):
            vaddr = base + offset
            assert space.translate(vaddr) % HUGE_PAGE_SIZE == vaddr % HUGE_PAGE_SIZE

    def test_multiple_huge_pages(self, space):
        base = space.mmap_huge(3)
        assert space.is_mapped(base + 2 * HUGE_PAGE_SIZE)

    def test_zero_huge_pages_rejected(self, space):
        with pytest.raises(ValueError):
            space.mmap_huge(0)


class TestMapFixed:
    def test_kernel_style_mapping(self, space):
        frame = space.physmem.alloc_frame()
        space.map_fixed(0xFFFF_0000, frame)
        assert space.translate(0xFFFF_0000) == frame * 4096

    def test_unaligned_rejected(self, space):
        with pytest.raises(ValueError):
            space.map_fixed(0xFFFF_0001, 0)
