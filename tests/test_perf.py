"""Tests for the performance model: agents, workloads, load generation."""

import pytest

from repro.core.config import DDIOConfig, MachineConfig
from repro.core.machine import Machine
from repro.defense.partitioning import AdaptivePartition
from repro.perf.agent import MemAgent
from repro.perf.workloads import FileCopyWorkload, NginxServer, TcpRecvWorkload
from repro.perf.wrk import LoadGenerator


def make_machine(ddio=True, partition=False):
    cfg = MachineConfig().scaled_down()
    cfg.ddio = DDIOConfig(enabled=ddio)
    machine = Machine(cfg)
    machine.install_nic()
    if partition:
        AdaptivePartition().install(machine)
    return machine


class TestMemAgent:
    def test_l1_filters_hot_lines(self, nic_machine):
        agent = MemAgent(nic_machine, "w")
        base = agent.mmap(1)
        agent.read(base)
        misses_before = nic_machine.llc.stats.cpu_misses
        for _ in range(10):
            agent.read(base)
        assert nic_machine.llc.stats.cpu_misses == misses_before

    def test_latency_advances_clock(self, nic_machine):
        agent = MemAgent(nic_machine, "w")
        base = agent.mmap(1)
        t0 = nic_machine.clock.now
        latency = agent.read(base)
        assert nic_machine.clock.now == t0 + latency

    def test_inclusive_back_invalidation(self, nic_machine):
        """An LLC eviction must also purge the L1 copy (inclusion)."""
        agent = MemAgent(nic_machine, "w")
        llc = nic_machine.llc
        base = agent.mmap(1)
        agent.read(base)
        paddr = agent.process.addrspace.translate(base)
        flat = llc.flat_set_of(paddr)
        llc.invalidate_set_lines(flat, io=False)
        assert not agent.hierarchy.l1.access(paddr)


class TestWorkloads:
    def test_filecopy_moves_configured_volume(self):
        machine = make_machine()
        report = FileCopyWorkload(machine, total_kb=64, chunk_kb=4).run()
        assert report.items == 16
        assert report.reads > 0

    def test_filecopy_ddio_cuts_traffic(self):
        no_ddio = FileCopyWorkload(make_machine(ddio=False), total_kb=64).run()
        with_ddio = FileCopyWorkload(make_machine(ddio=True), total_kb=64).run()
        assert with_ddio.reads < no_ddio.reads
        assert with_ddio.writes < no_ddio.writes

    def test_tcprecv_delivers_packets(self):
        machine = make_machine()
        report = TcpRecvWorkload(machine, n_packets=100).run()
        assert report.items == 100
        assert machine.nic.stats.frames == 100

    def test_tcprecv_needs_nic(self):
        machine = Machine(MachineConfig().scaled_down())
        with pytest.raises(RuntimeError):
            TcpRecvWorkload(machine)

    def test_nginx_serves_requests(self):
        machine = make_machine()
        server = NginxServer(machine, n_files=8, file_kb=8)
        report = server.serve_closed_loop(50)
        assert report.items == 50
        assert report.items_per_second(machine.clock.frequency_hz) > 0

    def test_nginx_ddio_faster_than_no_ddio(self):
        results = {}
        for ddio in (False, True):
            machine = make_machine(ddio=ddio)
            server = NginxServer(machine, n_files=32, file_kb=16)
            results[ddio] = server.serve_closed_loop(150).cycles
        assert results[True] < results[False]

    def test_nginx_partitioning_costs_little(self):
        results = {}
        for partition in (False, True):
            machine = make_machine(partition=partition)
            server = NginxServer(machine, n_files=32, file_kb=16)
            results[partition] = server.serve_closed_loop(150).cycles
        overhead = results[True] / results[False] - 1
        assert overhead < 0.15

    def test_randomizer_overhead_charged_to_requests(self):
        from repro.defense.randomization import FullRandomizer

        machine = make_machine()
        randomizer = FullRandomizer()
        machine.driver.randomizer = randomizer
        server = NginxServer(machine)
        server.randomizer = randomizer
        baseline_machine = make_machine()
        baseline = NginxServer(baseline_machine)
        slow = server.serve_closed_loop(100).cycles
        fast = baseline.serve_closed_loop(100).cycles
        assert slow > fast


class TestLoadGenerator:
    def test_open_loop_latency_includes_queueing(self):
        machine = make_machine()
        server = NginxServer(machine, n_files=8, file_kb=8)
        # Offered rate far above service rate: the tail must queue.
        report = LoadGenerator(machine, server, rate_rps=1e6, n_requests=200).run()
        pct = report.percentiles_ms()
        assert pct[99.0] > pct[25.0]

    def test_light_load_tail_far_below_overload_tail(self):
        def p99(rate):
            machine = make_machine()
            server = NginxServer(machine, n_files=8, file_kb=8)
            server.serve_closed_loop(50)  # warm caches
            report = LoadGenerator(
                machine, server, rate_rps=rate, n_requests=100
            ).run()
            return report.percentiles_ms()[99.0]

        assert p99(5_000) < p99(1_000_000) / 5

    def test_achieved_rate_bounded_by_offered(self):
        machine = make_machine()
        server = NginxServer(machine, n_files=8, file_kb=8)
        report = LoadGenerator(machine, server, rate_rps=20_000, n_requests=100).run()
        assert report.achieved_rps <= 20_000 * 1.1

    def test_validation(self):
        machine = make_machine()
        server = NginxServer(machine)
        with pytest.raises(ValueError):
            LoadGenerator(machine, server, rate_rps=0, n_requests=10)
        with pytest.raises(ValueError):
            LoadGenerator(machine, server, rate_rps=10, n_requests=0)
