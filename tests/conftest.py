"""Shared fixtures: scaled machines, spies, calibrated thresholds."""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running the suite from a source checkout even when the package is
# not installed (e.g. offline environments without wheel/pip access).
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import pytest

from repro.core.config import MachineConfig
from repro.core.machine import Machine


@pytest.fixture
def scaled_config() -> MachineConfig:
    """Small LLC + 32-slot ring; keeps every test under a second."""
    return MachineConfig().scaled_down()


@pytest.fixture
def machine(scaled_config) -> Machine:
    return Machine(scaled_config)


@pytest.fixture
def nic_machine(scaled_config) -> Machine:
    m = Machine(scaled_config)
    m.install_nic()
    return m


@pytest.fixture
def spy(nic_machine):
    return nic_machine.new_process("spy")


@pytest.fixture
def threshold(spy):
    from repro.attack.timing import calibrate_threshold

    return calibrate_threshold(spy)
