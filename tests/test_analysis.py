"""Unit + property tests for the analysis utilities."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.capacity import evaluate_channel
from repro.analysis.correlation import CorrelationClassifier, cross_correlation
from repro.analysis.levenshtein import (
    best_rotation,
    cyclic_levenshtein,
    error_rate,
    levenshtein,
    longest_mismatch_run,
)
from repro.analysis.lfsr import LFSR, lfsr_bits, lfsr_symbols
from repro.analysis.stats import confidence_interval, mean, percentile, percentiles


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein([1, 2, 3], [1, 2, 3]) == 0

    def test_empty_vs_full(self):
        assert levenshtein([], [1, 2, 3]) == 3

    def test_substitution(self):
        assert levenshtein("kitten", "sitten") == 1

    def test_classic_example(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_cyclic_matches_any_rotation(self):
        truth = [1, 2, 3, 4, 5]
        assert cyclic_levenshtein([3, 4, 5, 1, 2], truth) == 0

    def test_cyclic_counts_real_errors(self):
        truth = [1, 2, 3, 4, 5]
        assert cyclic_levenshtein([3, 4, 9, 1, 2], truth) == 1

    def test_error_rate_normalised(self):
        assert error_rate([1, 2], [1, 2, 3, 4]) == pytest.approx(0.5)

    def test_error_rate_empty_truth_rejected(self):
        with pytest.raises(ValueError):
            error_rate([1], [])

    def test_best_rotation_aligns(self):
        truth = [1, 2, 3, 4]
        assert best_rotation([3, 4, 1, 2], truth) == [3, 4, 1, 2]

    def test_longest_mismatch_zero_for_identical(self):
        assert longest_mismatch_run([1, 2, 3], [1, 2, 3]) == 0

    def test_longest_mismatch_counts_run(self):
        assert longest_mismatch_run([1, 9, 9, 9, 5], [1, 2, 3, 4, 5]) == 3

    @given(
        st.lists(st.integers(0, 5), max_size=20),
        st.lists(st.integers(0, 5), max_size=20),
    )
    @settings(max_examples=60)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(
        st.lists(st.integers(0, 5), max_size=15),
        st.lists(st.integers(0, 5), max_size=15),
        st.lists(st.integers(0, 5), max_size=15),
    )
    @settings(max_examples=40)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(st.lists(st.integers(0, 5), max_size=20))
    @settings(max_examples=40)
    def test_identity_of_indiscernibles(self, a):
        assert levenshtein(a, a) == 0

    @given(
        st.lists(st.integers(0, 3), min_size=1, max_size=12),
        st.integers(0, 11),
    )
    @settings(max_examples=40)
    def test_cyclic_invariant_under_rotation(self, seq, k):
        rotated = seq[k % len(seq):] + seq[: k % len(seq)]
        assert cyclic_levenshtein(rotated, seq) == 0


class TestLFSR:
    def test_full_period_15_bit(self):
        lfsr = LFSR(width=15, seed=1)
        states = set()
        for _ in range(lfsr.period):
            states.add(lfsr.state)
            lfsr.next_bit()
        assert len(states) == 2**15 - 1  # all states except zero

    def test_never_reaches_zero(self):
        lfsr = LFSR(width=7, seed=3)
        for _ in range(lfsr.period):
            lfsr.next_bit()
            assert lfsr.state != 0

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            LFSR(width=15, seed=0)

    def test_unsupported_width_rejected(self):
        with pytest.raises(ValueError):
            LFSR(width=13)

    def test_bits_balanced(self):
        bits = lfsr_bits(2**15 - 1)
        ones = sum(bits)
        assert abs(ones - 2**14) <= 1  # maximal sequences are near-balanced

    def test_symbols_in_range(self):
        for symbol in lfsr_symbols(500, 3):
            assert 0 <= symbol < 3

    def test_symbols_cover_alphabet(self):
        assert set(lfsr_symbols(200, 3)) == {0, 1, 2}

    def test_deterministic_for_seed(self):
        assert lfsr_bits(100, seed=7) == lfsr_bits(100, seed=7)

    def test_alphabet_validation(self):
        with pytest.raises(ValueError):
            lfsr_symbols(10, 1)


class TestCrossCorrelation:
    def test_identical_traces_score_one(self):
        t = [1, 4, 2, 4, 1, 3, 4, 4]
        assert cross_correlation(t, t) == pytest.approx(1.0)

    def test_shifted_trace_recovered_by_lag(self):
        t = [1, 1, 4, 4, 4, 1, 1, 3, 3, 1, 4, 4]
        shifted = t[2:] + [1, 1]
        assert cross_correlation(t, shifted, max_lag=4) > 0.7

    def test_constant_trace_scores_zero(self):
        assert cross_correlation([2, 2, 2], [1, 4, 1]) == 0.0

    def test_empty_scores_zero(self):
        assert cross_correlation([], [1]) == 0.0


class TestCorrelationClassifier:
    def _training(self):
        return {
            "a": [[4, 4, 1, 1, 4, 4, 1, 1]] * 3,
            "b": [[1, 1, 4, 4, 1, 1, 4, 4]] * 3,
        }

    def test_classifies_training_shape(self):
        clf = CorrelationClassifier(trace_length=8, max_lag=0)
        clf.fit(self._training())
        assert clf.classify([4, 4, 1, 1, 4, 4, 1, 1]) == "a"
        assert clf.classify([1, 1, 4, 4, 1, 1, 4, 4]) == "b"

    def test_accuracy_helper(self):
        clf = CorrelationClassifier(trace_length=8, max_lag=0)
        clf.fit(self._training())
        acc = clf.accuracy(
            [("a", [4, 4, 1, 1, 4, 4, 1, 1]), ("b", [1, 1, 4, 4, 1, 1, 4, 4])]
        )
        assert acc == 1.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CorrelationClassifier().classify([1, 2])

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            CorrelationClassifier().fit({})

    def test_short_traces_padded(self):
        clf = CorrelationClassifier(trace_length=16)
        clf.fit(self._training())
        assert clf.classify([4, 4, 1]) in ("a", "b")


class TestChannelReport:
    def test_bandwidth_math(self):
        report = evaluate_channel([0, 1] * 50, [0, 1] * 50, 1.0, alphabet=2)
        assert report.bandwidth_bps == pytest.approx(100.0)
        assert report.error_rate == 0.0
        assert report.effective_bandwidth_bps == pytest.approx(100.0)

    def test_error_rate_from_edit_distance(self):
        report = evaluate_channel([0, 1, 0, 1], [0, 1, 1, 1], 1.0, alphabet=2)
        assert report.error_rate == pytest.approx(0.25)

    def test_ternary_bits_per_symbol(self):
        report = evaluate_channel([0] * 100, [0] * 100, 1.0, alphabet=3)
        assert report.bandwidth_bps == pytest.approx(100 * math.log2(3))

    def test_erroneous_channel_loses_capacity(self):
        good = evaluate_channel([0, 1] * 50, [0, 1] * 50, 1.0, 2)
        bad = evaluate_channel([0, 1] * 50, [0, 0] * 50, 1.0, 2)
        assert bad.effective_bandwidth_bps < good.effective_bandwidth_bps

    def test_empty_sent_rejected(self):
        with pytest.raises(ValueError):
            evaluate_channel([], [], 1.0, 2)


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_confidence_interval_brackets_mean(self):
        mu, lo, hi = confidence_interval([10, 12, 11, 13, 9])
        assert lo <= mu <= hi

    def test_percentile_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 99) == 99
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100

    def test_percentiles_batch_matches_single(self):
        values = [5, 1, 9, 7, 3]
        batch = percentiles(values, (25, 99))
        assert batch[25] == percentile(values, 25)
        assert batch[99] == percentile(values, 99)

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50))
    @settings(max_examples=40)
    def test_percentile_within_range(self, values):
        p = percentile(values, 90)
        assert min(values) <= p <= max(values)
