"""Property-based tests (hypothesis) on the core data structures.

These pin down the invariants everything else relies on: LRU behaviour,
DDIO occupancy caps, partition isolation, ring-order stability, and the
address decomposition the attack reasons about.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cacheset import CacheSet, LINE_DIRTY, LINE_IO
from repro.cache.llc import SlicedLLC
from repro.cache.slicehash import IntelComplexHash
from repro.core.config import CacheGeometry, DDIOConfig
from repro.defense.partitioning import AdaptivePartition, PartitionConfig

SMALL_GEOMETRY = CacheGeometry(n_slices=2, sets_per_slice=16, ways=4)

# An operation stream: (op, line) with op 0=cpu read, 1=cpu write, 2=io.
op_streams = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 200)), max_size=200
)


def run_ops(llc, ops):
    for op, line in ops:
        paddr = line * 64
        if op == 2:
            llc.io_write(paddr)
        else:
            llc.cpu_access(paddr, write=(op == 1))


class TestCacheSetProperties:
    @given(st.lists(st.integers(0, 50), max_size=120), st.integers(1, 8))
    @settings(max_examples=60)
    def test_occupancy_never_exceeds_ways(self, lines, ways):
        cset = CacheSet(ways)
        for line in lines:
            if line not in cset:
                cset.insert(line, 0)
            else:
                cset.touch(line)
        assert len(cset) <= ways

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=100))
    @settings(max_examples=60)
    def test_io_count_matches_flags(self, lines):
        cset = CacheSet(4)
        rng = random.Random(0)
        for line in lines:
            flags = LINE_IO | LINE_DIRTY if rng.random() < 0.5 else 0
            if line not in cset:
                cset.insert(line, flags)
        actual_io = sum(1 for f in cset.lines.values() if f & LINE_IO)
        assert cset.io_count == actual_io

    @given(st.lists(st.integers(0, 10), min_size=5, max_size=50))
    @settings(max_examples=60)
    def test_most_recent_line_survives(self, lines):
        cset = CacheSet(2)
        for line in lines:
            if not cset.touch(line):
                cset.insert(line, 0)
        assert lines[-1] in cset


class TestLLCProperties:
    @given(op_streams)
    @settings(max_examples=50, deadline=None)
    def test_ddio_cap_invariant(self, ops):
        llc = SlicedLLC(geometry=SMALL_GEOMETRY, ddio=DDIOConfig(write_allocate_ways=2))
        run_ops(llc, ops)
        for cset in llc.sets:
            assert cset.io_count <= 2
            assert len(cset) <= cset.ways

    @given(op_streams)
    @settings(max_examples=50, deadline=None)
    def test_hit_after_any_history(self, ops):
        llc = SlicedLLC(geometry=SMALL_GEOMETRY)
        run_ops(llc, ops)
        llc.cpu_access(0x9999 * 64)
        hit, _ = llc.cpu_access(0x9999 * 64)
        assert hit

    @given(op_streams)
    @settings(max_examples=50, deadline=None)
    def test_traffic_counters_monotone_and_consistent(self, ops):
        llc = SlicedLLC(geometry=SMALL_GEOMETRY)
        run_ops(llc, ops)
        assert llc.traffic.reads == llc.stats.cpu_misses
        assert llc.traffic.reads >= 0 and llc.traffic.writes >= 0

    @given(op_streams)
    @settings(max_examples=50, deadline=None)
    def test_partition_isolation_invariant(self, ops):
        """Under the defense, I/O never evicts CPU lines and quotas hold."""
        llc = SlicedLLC(geometry=SMALL_GEOMETRY)
        partition = AdaptivePartition(PartitionConfig())
        llc.partition = partition
        run_ops(llc, ops)
        assert llc.stats.io_evicted_cpu == 0
        for flat, cset in enumerate(llc.sets):
            assert cset.io_count <= partition.config.max_quota

    @given(st.lists(st.integers(0, 1 << 24), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_flat_set_stable_within_line(self, paddrs):
        llc = SlicedLLC(geometry=SMALL_GEOMETRY)
        for paddr in paddrs:
            base = (paddr >> 6) << 6
            assert llc.flat_set_of(base) == llc.flat_set_of(base + 63)


class TestSliceHashProperties:
    @given(st.integers(0, (1 << 36) - 1), st.integers(0, (1 << 36) - 1))
    @settings(max_examples=100)
    def test_xor_linearity(self, a, b):
        h = IntelComplexHash(8)
        assert h.slice_of(a ^ b) == h.slice_of(a) ^ h.slice_of(b)

    @given(st.integers(0, (1 << 30) - 1))
    @settings(max_examples=100)
    def test_range(self, paddr):
        assert 0 <= IntelComplexHash(8).slice_of(paddr) < 8


class TestRingProperties:
    @given(st.integers(1, 200))
    @settings(max_examples=25, deadline=None)
    def test_ring_order_stable_under_traffic(self, n_packets):
        """Small broadcast packets never change buffer order — the property
        the whole attack rests on."""
        from repro.core.config import MachineConfig
        from repro.core.machine import Machine
        from repro.net.packet import Frame

        machine = Machine(MachineConfig().scaled_down())
        machine.install_nic()
        before = machine.ring.order_fingerprint()
        for _ in range(n_packets):
            machine.nic.deliver(Frame(size=64, protocol="broadcast"))
        assert machine.ring.order_fingerprint() == before

    @given(st.integers(1, 100), st.integers(2, 64))
    @settings(max_examples=25, deadline=None)
    def test_fill_sequence_is_cyclic(self, n_packets, _unused):
        from repro.core.config import MachineConfig
        from repro.core.machine import Machine
        from repro.net.packet import Frame

        machine = Machine(MachineConfig().scaled_down())
        machine.install_nic(log_receives=True)
        for _ in range(n_packets):
            machine.nic.deliver(Frame(size=64, protocol="broadcast"))
        slots = [r.ring_slot for r in machine.driver.receive_log]
        ring = len(machine.ring.buffers)
        assert slots == [i % ring for i in range(n_packets)]


class TestLevenshteinVsBruteForce:
    @given(
        st.text(alphabet="abc", max_size=6),
        st.text(alphabet="abc", max_size=6),
    )
    @settings(max_examples=60)
    def test_matches_recursive_definition(self, a, b):
        from functools import lru_cache

        from repro.analysis.levenshtein import levenshtein

        @lru_cache(maxsize=None)
        def brute(x, y):
            if not x:
                return len(y)
            if not y:
                return len(x)
            return min(
                brute(x[1:], y) + 1,
                brute(x, y[1:]) + 1,
                brute(x[1:], y[1:]) + (x[0] != y[0]),
            )

        assert levenshtein(a, b) == brute(a, b)
